package db

import (
	"fmt"

	"elasticore/internal/deque"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
)

// Placement selects the engine's thread/data placement strategy.
type Placement int

const (
	// PlacementOS leaves thread scheduling entirely to the OS, like
	// MonetDB: every submitted query fans out its own set of unpinned
	// worker threads ("the SQL version generates multiple threads for
	// every operator in the query plan", Section II-B), which the kernel
	// places and balances — the thread churn of Figures 4 and 5.
	PlacementOS Placement = iota
	// PlacementNUMAAware runs a fixed pool with one worker pinned to each
	// core and dispatches tasks toward the node holding their input data,
	// like SQL Server.
	PlacementNUMAAware
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	if p == PlacementNUMAAware {
		return "numa-aware"
	}
	return "os"
}

// Config assembles an Engine.
type Config struct {
	// Scheduler the worker threads run under.
	Scheduler *sched.Scheduler
	// PID is the DBMS server process id (cgroup membership, residency).
	PID int
	// Workers is the pool size; zero selects one per core (the MonetDB
	// default: "one thread per core").
	Workers int
	// Fanout is the partition count per operator; zero selects Workers.
	Fanout int
	// Placement selects OS-managed (MonetDB) or NUMA-aware (SQL Server)
	// behaviour.
	Placement Placement
	// MinPartRows bounds partitioning for small inputs; zero selects 256.
	MinPartRows int
	// ParseCycles is the serial admission cost per query: parsing,
	// optimization and catalog access run under a global lock in one
	// server thread (MonetDB's mvc/MAL front end). Zero selects 150 us at
	// the machine clock; negative disables the front end entirely
	// (queries start their dataflow immediately).
	ParseCycles int64
	// AdvanceCycles is the serial dataflow-claim cost per operator stage:
	// MonetDB's DFLOW scheduler admits each instruction's worker fan-out
	// through a central claim section, which is what keeps measured CPU
	// load below saturation at high client counts. Zero selects 30 us;
	// only charged when the front end is enabled.
	AdvanceCycles int64
	// Naive disables the engine's execution-path optimizations — buffer
	// pooling and the open-addressing operator hash tables — restoring
	// the seed implementation's allocation and hashing profile. Query
	// results are identical; only host CPU time differs. Used by the
	// equivalence bench.
	Naive bool
}

// TaskEvent is emitted when a worker finishes a task (tomograph feed).
type TaskEvent struct {
	Worker sched.TID
	Op     string
	Start  uint64 // cycles
	End    uint64 // cycles
}

// Engine executes plans over a Store with a fixed worker-thread pool.
type Engine struct {
	cfg     Config
	store   *Store
	machine *numa.Machine
	sched   *sched.Scheduler

	workers []*worker
	// queue is the central dispatch FIFO (PlacementOS); nodeQueues are
	// per-node FIFOs used first under PlacementNUMAAware.
	queue      deque.Deque[*dispatched]
	nodeQueues []deque.Deque[*dispatched]

	queries     []*Query
	nextQueryID int

	// serverJobs is the serial front-end queue drained by serverThread:
	// query admissions (parse) and stage advances (dataflow claims).
	serverJobs   deque.Deque[serverJob]
	serverThread *sched.Thread

	// pool recycles the steady-state churn of query execution — candidate
	// lists, value buffers, aggregation partials and dispatch envelopes —
	// so repeated queries stop allocating once warm. Buffers are handed to
	// queries on demand and reclaimed when the finished query is drained.
	pool bufPool

	// TasksExecuted counts finished tasks (paper Fig 13 (c)).
	TasksExecuted uint64

	// bus, when attached, receives KindTaskDone events stamped with
	// busTenant; nil keeps the completion path dark. The bus replaced
	// the pre-bus OnTaskDone single hook (replace-on-attach, so a
	// second consumer silently clobbered the first), which was deleted
	// once every consumer moved over.
	bus       *obs.Bus
	busTenant string
}

// SetBus attaches the telemetry bus the engine publishes task
// completions onto (nil detaches); tenant labels the events under
// consolidation ("" for a single-tenant rig). Attach once, before
// subscribing consumers.
func (e *Engine) SetBus(b *obs.Bus, tenant string) { e.bus, e.busTenant = b, tenant }

// Bus returns the attached telemetry bus, nil when dark.
func (e *Engine) Bus() *obs.Bus { return e.bus }

// EnsureBus returns the attached bus, creating a default-capacity one on
// first use, so several trace consumers share one stream.
func (e *Engine) EnsureBus() *obs.Bus {
	if e.bus == nil {
		e.bus = obs.NewBus(0)
	}
	return e.bus
}

// dispatched pairs a task with its owning query.
type dispatched struct {
	task  Task
	query *Query
	start uint64
}

// NewEngine creates the engine and spawns its worker pool. Workers block
// until tasks arrive.
func NewEngine(store *Store, cfg Config) (*Engine, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("db: Scheduler is required")
	}
	if cfg.PID == 0 {
		return nil, fmt.Errorf("db: PID is required")
	}
	topo := store.Machine().Topology()
	if cfg.Workers == 0 {
		cfg.Workers = topo.TotalCores()
	}
	if cfg.Fanout == 0 {
		cfg.Fanout = cfg.Workers
	}
	if cfg.MinPartRows == 0 {
		cfg.MinPartRows = 256
	}
	e := &Engine{
		cfg:        cfg,
		store:      store,
		machine:    store.Machine(),
		sched:      cfg.Scheduler,
		nodeQueues: make([]deque.Deque[*dispatched], topo.NodeCount),
	}
	if cfg.ParseCycles == 0 {
		cfg.ParseCycles = int64(topo.SecondsToCycles(150e-6))
	}
	if cfg.AdvanceCycles == 0 {
		cfg.AdvanceCycles = int64(topo.SecondsToCycles(30e-6))
	}
	e.cfg = cfg
	if cfg.Placement == PlacementNUMAAware {
		// SQL Server style: a fixed pool, one worker pinned per core.
		for i := 0; i < cfg.Workers; i++ {
			w := &worker{eng: e, id: i, pinnedNode: numa.NoNode}
			core := numa.CoreID(i % topo.TotalCores())
			w.pinnedNode = topo.NodeOf(core)
			w.thread = cfg.Scheduler.Spawn(cfg.PID, fmt.Sprintf("worker%d", i), w,
				sched.Pinned(sched.NewCPUSet(core)))
			e.workers = append(e.workers, w)
		}
	}
	if cfg.ParseCycles > 0 {
		e.serverThread = cfg.Scheduler.Spawn(cfg.PID, "server", &serverRunner{eng: e})
	}
	return e, nil
}

// serverJob is one unit of serial front-end work.
type serverJob struct {
	query  *Query
	cycles uint64
	start  bool // parse+start vs stage advance
}

// serverRunner is the single front-end thread: it burns the serial cost
// of parses and dataflow claims, then performs them. Its serialization is
// the Amdahl component that keeps many-client CPU load in the elastic
// band.
type serverRunner struct {
	eng       *Engine
	cur       serverJob
	hasCur    bool
	remaining uint64
}

// Run implements sched.Runner.
func (s *serverRunner) Run(_ *sched.ExecContext, budget uint64) (uint64, bool, bool) {
	var used uint64
	for used < budget {
		if !s.hasCur {
			job, ok := s.eng.serverJobs.PopFront()
			if !ok {
				return used, used == 0, false
			}
			s.cur, s.hasCur = job, true
			s.remaining = job.cycles
		}
		slice := budget - used
		if slice < s.remaining {
			s.remaining -= slice
			return budget, false, false
		}
		used += s.remaining
		job := s.cur
		s.hasCur = false
		if job.start {
			s.eng.startQuery(job.query)
		} else {
			s.eng.advance(job.query)
		}
	}
	return used, false, false
}

// Store returns the engine's catalog.
func (e *Engine) Store() *Store { return e.store }

// PID returns the server process id.
func (e *Engine) PID() int { return e.cfg.PID }

// Placement returns the configured placement strategy.
func (e *Engine) Placement() Placement { return e.cfg.Placement }

// Submit starts executing a plan and returns its Query handle. The first
// stage's tasks are enqueued immediately. Under PlacementOS the query
// fans out its own worker threads (MonetDB's per-query dataflow threads);
// they exit when the query completes.
func (e *Engine) Submit(p *Plan) *Query {
	e.nextQueryID++
	q := &Query{
		ID:          e.nextQueryID,
		Plan:        p,
		eng:         e,
		vars:        make(map[string]*PartSet),
		sets:        make(map[string]*i64Map),
		scalars:     make(map[string]float64),
		partials:    make(map[string][]*i64fMap),
		startCycles: e.machine.Now(),
	}
	e.queries = append(e.queries, q)
	if e.serverThread != nil {
		// Serial front end: parse/optimize first, dataflow after.
		e.serverJobs.PushBack(serverJob{
			query: q, cycles: uint64(e.cfg.ParseCycles), start: true,
		})
		e.sched.Wake(e.serverThread)
		return q
	}
	e.startQuery(q)
	return q
}

// startQuery launches the dataflow of an admitted query.
func (e *Engine) startQuery(q *Query) {
	if e.cfg.Placement == PlacementOS {
		// The dataflow threads fork near their client connection's
		// handler; the OS balancer spreads them afterwards (the stolen
		// tasks of Fig 13 (d)).
		home := numa.NodeID(q.ID % e.machine.Topology().NodeCount)
		for i := 0; i < e.cfg.Workers; i++ {
			w := &worker{eng: e, id: i, pinnedNode: numa.NoNode, query: q}
			w.thread = e.sched.Spawn(e.cfg.PID, fmt.Sprintf("q%d-w%d", q.ID, i), w,
				sched.NearNode(home))
		}
	}
	e.advance(q)
}

// advance plans and enqueues the next stage of q, skipping empty stages,
// and completes the query after the last one.
func (e *Engine) advance(q *Query) {
	for q.stage < len(q.Plan.Stages) {
		tasks := q.Plan.Stages[q.stage](q)
		q.stage++
		if len(tasks) == 0 {
			continue
		}
		q.pending = len(tasks)
		for _, t := range tasks {
			var d *dispatched
			if e.cfg.Naive {
				d = &dispatched{}
			} else {
				d = e.pool.getDispatched()
			}
			d.task, d.query = t, q
			e.enqueue(d)
		}
		return
	}
	q.done = true
	q.endCycles = e.machine.Now()
	// Wake blocked per-query workers so they observe completion and exit.
	e.sched.WakeAll(e.cfg.PID)
}

// enqueue places a task on the dispatch queue(s) and wakes blocked
// workers.
func (e *Engine) enqueue(d *dispatched) {
	d.start = e.machine.Now()
	switch {
	case e.cfg.Placement == PlacementOS:
		// Per-query dataflow: the owning query's threads consume it.
		d.query.taskQueue.PushBack(d)
	case d.task.PreferredNode() != numa.NoNode:
		e.nodeQueues[d.task.PreferredNode()].PushBack(d)
	default:
		e.queue.PushBack(d)
	}
	e.sched.WakeAll(e.cfg.PID)
}

// dispatch hands the next task to a worker, or nil when nothing is
// queued. Per-query workers only serve their own query; NUMA-aware
// workers drain their own node's queue first, then the global queue, then
// steal from other nodes (SQL Server's soft affinity).
func (e *Engine) dispatch(w *worker) *dispatched {
	if w.query != nil {
		d, _ := w.query.taskQueue.PopFront()
		return d
	}
	if e.cfg.Placement == PlacementNUMAAware && w.pinnedNode != numa.NoNode {
		if d, ok := e.nodeQueues[w.pinnedNode].PopFront(); ok {
			return d
		}
		if d, ok := e.queue.PopFront(); ok {
			return d
		}
		for n := range e.nodeQueues {
			if d, ok := e.nodeQueues[n].PopFront(); ok {
				return d
			}
		}
		return nil
	}
	d, _ := e.queue.PopFront()
	return d
}

// taskFinished accounts a completed task and advances its query when the
// stage drains.
func (e *Engine) taskFinished(w *worker, d *dispatched) {
	e.TasksExecuted++
	if e.bus != nil {
		e.bus.Publish(obs.Event{
			Kind:   obs.KindTaskDone,
			Now:    e.machine.Now(),
			TID:    int64(w.thread.ID),
			Core:   -1,
			Start:  d.start,
			Dur:    e.machine.Now() - d.start,
			Label:  d.task.Op(),
			Tenant: e.busTenant,
		})
	}
	q := d.query
	if !e.cfg.Naive {
		e.pool.putDispatched(d)
	}
	q.pending--
	if q.pending == 0 {
		if e.serverThread != nil {
			// The next stage's fan-out goes through the serial dataflow
			// claim.
			e.serverJobs.PushBack(serverJob{
				query: q, cycles: uint64(e.cfg.AdvanceCycles),
			})
			e.sched.Wake(e.serverThread)
			return
		}
		e.advance(q)
	}
}

// PendingTasks returns the number of queued (undispatched) tasks.
func (e *Engine) PendingTasks() int {
	n := e.queue.Len()
	for i := range e.nodeQueues {
		n += e.nodeQueues[i].Len()
	}
	for _, q := range e.queries {
		n += q.taskQueue.Len()
	}
	return n
}

// ActiveQueries returns the number of submitted-but-unfinished queries.
func (e *Engine) ActiveQueries() int {
	n := 0
	for _, q := range e.queries {
		if !q.done {
			n++
		}
	}
	return n
}

// Release drops one finished query from the engine's tracking list and
// reclaims its pooled buffers. Workload drivers call it as soon as a
// client observes completion, which is what lets a steady stream of
// queries run out of recycled storage. The query's intermediates must not
// be read afterwards; callers that read results after the fact use Drain
// instead, which never recycles. Release is idempotent: a second call on
// an already-released query is a no-op, so a buffer can never reach the
// pool twice and be handed to two future queries at once.
func (e *Engine) Release(q *Query) {
	if q == nil || !q.done || q.released {
		return
	}
	q.released = true
	for i := range e.queries {
		if e.queries[i] == q {
			e.queries = append(e.queries[:i], e.queries[i+1:]...)
			break
		}
	}
	q.releaseTo(&e.pool)
}

// Drain removes finished queries from the engine's tracking list and
// returns them (workload bookkeeping between phases). Unlike Release, it
// does NOT recycle their buffers, so the returned queries' results remain
// readable indefinitely.
func (e *Engine) Drain() []*Query {
	var done, live []*Query
	for _, q := range e.queries {
		if q.done {
			done = append(done, q)
		} else {
			live = append(live, q)
		}
	}
	e.queries = live
	return done
}

// worker is the Runner behind each pool or per-query thread: it pulls
// tasks and steps them within the scheduler's budget.
type worker struct {
	eng        *Engine
	id         int
	thread     *sched.Thread
	cur        *dispatched
	pinnedNode numa.NodeID
	// query, when set, ties the worker to one query's dataflow
	// (MonetDB-style per-query threads); the worker exits when the query
	// completes.
	query *Query
}

// Run implements sched.Runner.
func (w *worker) Run(ctx *sched.ExecContext, budget uint64) (uint64, bool, bool) {
	var used uint64
	for used < budget {
		if w.cur == nil {
			if w.query != nil && w.query.done {
				return used, false, true // dataflow finished: thread exits
			}
			w.cur = w.eng.dispatch(w)
			if w.cur == nil {
				// Nothing to do: block until the engine wakes the pool.
				return used, used == 0, false
			}
		}
		u, done := w.cur.task.Step(ctx, budget-used)
		used += u
		if done {
			d := w.cur
			w.cur = nil
			w.eng.taskFinished(w, d)
			continue
		}
		if u == 0 {
			break
		}
	}
	return used, false, false
}
