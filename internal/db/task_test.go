package db

import (
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// TestChunkTaskRespectsBudget verifies resumability: a task stepped with
// tiny budgets makes incremental progress and eventually finishes with
// the same result as one big step.
func TestChunkTaskRespectsBudget(t *testing.T) {
	m := numa.NewMachine(numa.Opteron8387())
	col := NewF64("c", make([]float64, 10000))
	for i := range col.F {
		col.F[i] = 1
	}
	var sum float64
	mk := func() *chunkTask {
		sum = 0
		tk := newChunkTask("op", m, []*BAT{col}, 0, col.Len(), 2)
		tk.process = func(a, b int) {
			for i := a; i < b; i++ {
				sum += col.F[i]
			}
		}
		return tk
	}
	ctx := &sched.ExecContext{Machine: m, Core: 0, PID: 1}

	tk := mk()
	steps := 0
	for {
		used, done := tk.Step(ctx, 5000)
		if used > 5000 {
			t.Fatalf("used %d exceeds budget 5000", used)
		}
		steps++
		if done {
			break
		}
		if steps > 100000 {
			t.Fatal("task never finished")
		}
	}
	if sum != 10000 {
		t.Errorf("sum = %g, want 10000", sum)
	}
	if steps < 2 {
		t.Errorf("task finished in %d steps; budget not binding", steps)
	}
}

// TestChunkTaskDebtCarries verifies the congestion-integrity property: an
// atomic chunk whose cost exceeds the budget is paid down across quanta
// instead of being silently truncated.
func TestChunkTaskDebtCarries(t *testing.T) {
	m := numa.NewMachine(numa.Opteron8387())
	col := NewF64("c", make([]float64, 64))
	// Enormous per-tuple cost makes the first chunk exceed any small
	// budget.
	tk := newChunkTask("op", m, []*BAT{col}, 0, col.Len(), 1_000_000)
	ctx := &sched.ExecContext{Machine: m, Core: 0, PID: 1}

	var total uint64
	done := false
	for i := 0; i < 1_000_000 && !done; i++ {
		var used uint64
		used, done = tk.Step(ctx, 1000)
		if used > 1000 {
			t.Fatalf("step used %d > budget", used)
		}
		total += used
	}
	if !done {
		t.Fatal("task did not finish")
	}
	if total < 64*1_000_000 {
		t.Errorf("total charged %d below true cost %d — debt was truncated", total, 64*1_000_000)
	}
}

// TestFuncTaskPaysDownCost verifies single-shot combine tasks amortize
// their computed cost across quanta.
func TestFuncTaskPaysDownCost(t *testing.T) {
	ran := 0
	ft := &funcTask{op: "combine", pref: numa.NoNode}
	ft.work = func(*sched.ExecContext) uint64 {
		ran++
		return 10_000
	}
	ctx := &sched.ExecContext{}
	var total uint64
	done := false
	for i := 0; i < 100 && !done; i++ {
		var used uint64
		used, done = ft.Step(ctx, 1500)
		total += used
	}
	if ran != 1 {
		t.Errorf("work ran %d times, want once", ran)
	}
	if !done || total != 10_000 {
		t.Errorf("done=%v total=%d, want true/10000", done, total)
	}
}

// TestGatherChargeBounds verifies the gather hook clamps its chunk range
// and charges nothing for empty candidates.
func TestGatherChargeBounds(t *testing.T) {
	m := numa.NewMachine(numa.Opteron8387())
	st := NewStore(m)
	if _, err := st.CreateTable("t", map[string]*BAT{"c": NewI64("c", make([]int64, 1000))}); err != nil {
		t.Fatal(err)
	}
	col := st.Table("t").Col("c")
	ctx := &sched.ExecContext{Machine: m, Core: 0, PID: 1}

	empty := NewI64("cand", nil)
	if got := gatherCharge(empty, col)(ctx, 0, 10); got != 0 {
		t.Errorf("empty candidate charged %d cycles", got)
	}
	cand := NewI64("cand", []int64{10, 20, 900})
	if got := gatherCharge(cand, col)(ctx, 0, 3); got == 0 {
		t.Error("non-empty candidate charged nothing")
	}
	// Out-of-range chunk bounds are clamped, not panicking.
	if got := gatherCharge(cand, col)(ctx, 2, 50); got == 0 {
		t.Error("clamped chunk charged nothing")
	}
	if got := gatherCharge(cand, col)(ctx, 5, 9); got != 0 {
		t.Errorf("fully out-of-range chunk charged %d", got)
	}
}

// TestServerThreadSerializesAdmission verifies that with a non-zero parse
// cost, n submissions take at least n*ParseCycles of virtual time.
func TestServerThreadSerializesAdmission(t *testing.T) {
	m := numa.NewMachine(numa.Opteron8387())
	sc := sched.New(m, sched.Config{Quantum: m.Topology().SecondsToCycles(50e-6)})
	st := NewStore(m)
	if _, err := st.CreateTable("lineitem", map[string]*BAT{
		"x": NewI64("x", make([]int64, 64)),
	}); err != nil {
		t.Fatal(err)
	}
	parse := int64(m.Topology().SecondsToCycles(1e-3))
	eng, err := NewEngine(st, Config{Scheduler: sc, PID: 5, ParseCycles: parse})
	if err != nil {
		t.Fatal(err)
	}
	var qs []*Query
	for i := 0; i < 4; i++ {
		qs = append(qs, eng.Submit(&Plan{Name: "tiny", Stages: []StageFn{
			ScanAll("lineitem", "x", "c"),
			Count("c", "n"),
		}}))
	}
	done := func() bool {
		for _, q := range qs {
			if !q.Done() {
				return false
			}
		}
		return true
	}
	if !sc.RunUntil(done, m.Topology().SecondsToCycles(60)) {
		t.Fatal("queries did not finish")
	}
	if now := m.Now(); now < uint64(4*parse) {
		t.Errorf("4 admissions finished in %d cycles, below serial parse floor %d", now, 4*parse)
	}
}

// TestParseDisabled verifies negative ParseCycles bypasses the front end.
func TestParseDisabled(t *testing.T) {
	m := numa.NewMachine(numa.Opteron8387())
	sc := sched.New(m, sched.Config{})
	st := NewStore(m)
	if _, err := st.CreateTable("lineitem", map[string]*BAT{
		"x": NewI64("x", make([]int64, 64)),
	}); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(st, Config{Scheduler: sc, PID: 5, ParseCycles: -1})
	if err != nil {
		t.Fatal(err)
	}
	if eng.serverThread != nil {
		t.Error("front end present despite ParseCycles < 0")
	}
	q := eng.Submit(&Plan{Name: "tiny", Stages: []StageFn{
		ScanAll("lineitem", "x", "c"),
		Count("c", "n"),
	}})
	if !sc.RunUntil(q.Done, m.Topology().SecondsToCycles(60)) {
		t.Fatal("query did not finish")
	}
	if q.Scalar("n") != 64 {
		t.Errorf("count = %g, want 64", q.Scalar("n"))
	}
}
