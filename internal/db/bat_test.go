package db

import (
	"testing"
	"testing/quick"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

func testMachine() *numa.Machine { return numa.NewMachine(numa.Opteron8387()) }

func TestBATLenBytes(t *testing.T) {
	b := NewI64("x", []int64{1, 2, 3})
	if b.Len() != 3 || b.Bytes() != 24 {
		t.Errorf("Len=%d Bytes=%d, want 3/24", b.Len(), b.Bytes())
	}
	f := NewF64("y", []float64{1.5})
	if f.Len() != 1 || f.Kind != KindF64 {
		t.Errorf("float BAT wrong: %+v", f)
	}
}

func TestCreateTableValidatesLengths(t *testing.T) {
	s := NewStore(testMachine())
	_, err := s.CreateTable("t", map[string]*BAT{
		"a": NewI64("a", make([]int64, 10)),
		"b": NewI64("b", make([]int64, 9)),
	})
	if err == nil {
		t.Error("mismatched column lengths accepted")
	}
	if _, err := s.CreateTable("ok", map[string]*BAT{"a": NewI64("a", make([]int64, 4))}); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	if _, err := s.CreateTable("ok", map[string]*BAT{"a": NewI64("a", nil)}); err == nil {
		t.Error("duplicate table accepted")
	}
	if !s.HasTable("ok") || s.HasTable("nope") {
		t.Error("HasTable wrong")
	}
}

func TestChargeRangeTouchesRightBlocks(t *testing.T) {
	m := testMachine()
	s := NewStore(m)
	topo := m.Topology()
	rowsPerBlock := topo.BlockBytes / valueBytes
	vals := make([]int64, 3*rowsPerBlock)
	tb, err := s.CreateTable("t", map[string]*BAT{"a": NewI64("a", vals)})
	if err != nil {
		t.Fatal(err)
	}
	c := tb.Col("a")
	// The loader homes base columns eagerly, one node per column in
	// rotation (the first column lands on node 0).
	if got := m.Memory().HomedBlocks()[0]; got != 3 {
		t.Fatalf("loader homed %d blocks on node 0, want 3", got)
	}
	ctx := &sched.ExecContext{Machine: m, Core: 0, PID: 1}
	before := m.Snapshot()
	cycles := c.chargeRange(ctx, 0, rowsPerBlock, false)
	if cycles == 0 {
		t.Error("no cost charged")
	}
	w := m.Snapshot().Sub(before)
	if w.Nodes[0].DataTouches != 1 {
		t.Errorf("one-block charge touched %d blocks, want 1", w.Nodes[0].DataTouches)
	}
	// Crossing a block boundary touches two blocks.
	before = m.Snapshot()
	c.chargeRange(ctx, rowsPerBlock-1, rowsPerBlock+1, false)
	w = m.Snapshot().Sub(before)
	if w.Nodes[0].DataTouches != 2 {
		t.Errorf("boundary charge touched %d blocks, want 2", w.Nodes[0].DataTouches)
	}
}

func TestHomeOfRow(t *testing.T) {
	m := testMachine()
	s := NewStore(m)
	topo := m.Topology()
	rowsPerBlock := topo.BlockBytes / valueBytes
	// Two columns: the loader rotation places "a" on node 0 and "b" on
	// node 1 (name order).
	tb, err := s.CreateTable("t", map[string]*BAT{
		"a": NewI64("a", make([]int64, 2*rowsPerBlock)),
		"b": NewI64("b", make([]int64, 2*rowsPerBlock)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Col("a").HomeOfRow(m.Memory(), topo.BlockBytes, 0); got != 0 {
		t.Errorf("column a home = %d, want 0", got)
	}
	if got := tb.Col("b").HomeOfRow(m.Memory(), topo.BlockBytes, rowsPerBlock); got != 1 {
		t.Errorf("column b home = %d, want 1", got)
	}
	// Intermediates stay lazy: home decided by the producing core.
	inter := NewI64("x", make([]int64, rowsPerBlock))
	if got := inter.HomeOfRow(m.Memory(), topo.BlockBytes, 0); got != numa.NoNode {
		t.Errorf("unplaced intermediate home = %d, want NoNode", got)
	}
	ctx := &sched.ExecContext{Machine: m, Core: topo.CoreOf(2, 0), PID: 1}
	inter.chargeRange(ctx, 0, 1, true)
	if got := inter.HomeOfRow(m.Memory(), topo.BlockBytes, 0); got != 2 {
		t.Errorf("intermediate home after producer touch = %d, want 2", got)
	}
}

func TestPartitionRanges(t *testing.T) {
	cases := []struct {
		n, parts, min int
		wantParts     int
	}{
		{100, 4, 1, 4},
		{100, 4, 60, 1},    // minRows caps the fan-out
		{10, 16, 1, 10},    // more parts than rows collapses
		{0, 4, 1, 1},       // empty input yields one empty range
		{1000, 16, 256, 3}, // maxParts = floor(1000/256) = 3
	}
	for _, tc := range cases {
		got := partitionRanges(tc.n, tc.parts, tc.min)
		if len(got) != tc.wantParts {
			t.Errorf("partitionRanges(%d,%d,%d) -> %d parts, want %d",
				tc.n, tc.parts, tc.min, len(got), tc.wantParts)
		}
	}
}

func TestPartitionRangesCoverDisjoint(t *testing.T) {
	f := func(nRaw, partsRaw, minRaw uint16) bool {
		n := int(nRaw % 5000)
		parts := int(partsRaw%32) + 1
		min := int(minRaw%512) + 1
		rs := partitionRanges(n, parts, min)
		covered := 0
		last := 0
		for _, r := range rs {
			if r[0] != last || r[1] < r[0] {
				return false
			}
			covered += r[1] - r[0]
			last = r[1]
		}
		if n <= 0 {
			return covered == 0
		}
		return covered == n && last == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
