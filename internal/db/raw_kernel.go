package db

import (
	"fmt"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// raw_kernel.go is the stand-in for the paper's hand-coded C version of
// TPC-H Q6 (Figure 3, bottom): a single program spawning K pthreads, each
// running one fused scan loop over disjoint slices of the query's columns.
// Unlike the Volcano engine, there is no per-operator thread fan-out and
// no materialized intermediates, so the OS finds data affinity far more
// easily — the Fig 4 baseline.

// RawAffinity selects how the raw kernel pins its threads, matching the
// pthread_setaffinity_np policies of Section II-B.
type RawAffinity int

const (
	// RawOS leaves the threads unpinned (policy "OS/C").
	RawOS RawAffinity = iota
	// RawDense pins all threads to the cores of a single node
	// (policy "Dense/C").
	RawDense
	// RawSparse pins thread k to a core on node k mod NodeCount
	// (policy "Sparse/C").
	RawSparse
)

// String implements fmt.Stringer.
func (a RawAffinity) String() string {
	switch a {
	case RawDense:
		return "dense"
	case RawSparse:
		return "sparse"
	default:
		return "os"
	}
}

// RawQ6 is one execution of the fused Q6 kernel: scans shipdate, discount,
// quantity and extendedprice slices in one pass and accumulates revenue.
type RawQ6 struct {
	Revenue   float64
	remaining int // unfinished threads

	shipdate, quantity *BAT
	discount, price    *BAT
}

// Done reports whether all kernel threads have finished.
func (k *RawQ6) Done() bool { return k.remaining == 0 }

// SpawnRawQ6 launches the kernel under pid with nthreads threads and the
// given affinity policy. Like the paper's C program (Figure 3), the
// kernel owns its arrays: the four columns are copied into fresh memory
// whose placement is decided by the kernel threads' own first touch, not
// by the DBMS loader.
func SpawnRawQ6(s *Store, sc *sched.Scheduler, pid, nthreads int, aff RawAffinity) (*RawQ6, error) {
	li := s.Table("lineitem")
	// The kernel's arrays alias the store's immutable value slices (the
	// kernel only reads them) but carry fresh BAT headers, so their
	// simulated regions are separate and homed by the kernel threads' own
	// first touch — the behaviour the Fig 4 baseline depends on. Naive
	// mode performs the seed's deep copy instead.
	clone := func(c *BAT) *BAT {
		if s.Machine().NaiveCharging() {
			out := &BAT{Name: "raw." + c.Name, Kind: c.Kind}
			out.I = append(out.I, c.I...)
			out.F = append(out.F, c.F...)
			return out
		}
		return &BAT{Name: "raw." + c.Name, Kind: c.Kind, I: c.I, F: c.F}
	}
	k := &RawQ6{
		shipdate: clone(li.Col("l_shipdate")),
		quantity: clone(li.Col("l_quantity")),
		discount: clone(li.Col("l_discount")),
		price:    clone(li.Col("l_extendedprice")),
	}
	if nthreads < 1 {
		return nil, fmt.Errorf("db: raw kernel needs at least one thread")
	}
	topo := s.Machine().Topology()
	ranges := partitionRanges(li.Rows, nthreads, 1)
	k.remaining = len(ranges)
	for i, r := range ranges {
		t := k.sliceTask(s.Machine(), r[0], r[1])
		var opts []sched.SpawnOption
		switch aff {
		case RawDense:
			opts = append(opts, sched.Pinned(sched.NewCPUSet(topo.Cores(0)...)))
		case RawSparse:
			node := numa.NodeID(i % topo.NodeCount)
			opts = append(opts, sched.Pinned(sched.NewCPUSet(topo.Cores(node)...)))
		}
		sc.Spawn(pid, fmt.Sprintf("rawq6-%d", i), t, opts...)
	}
	return k, nil
}

// sliceTask returns the Runner for one thread's fused scan over rows
// [lo, hi).
func (k *RawQ6) sliceTask(machine *numa.Machine, lo, hi int) sched.Runner {
	ct := newChunkTask("raw.q6", machine,
		[]*BAT{k.shipdate, k.quantity, k.discount, k.price}, lo, hi, cyclesScan)
	op := NewFusedQ6(k.shipdate, k.quantity, k.discount, k.price, lo, hi)
	ct.process = op.runRange
	ct.finish = func(*sched.ExecContext) []*BAT {
		k.Revenue += op.partial
		k.remaining--
		return nil
	}
	return sched.RunnerFunc(func(ctx *sched.ExecContext, budget uint64) (uint64, bool, bool) {
		used, done := ct.Step(ctx, budget)
		return used, false, done
	})
}
