package db

import (
	"sort"
	"testing"

	"elasticore/internal/hashmix"
)

// diff_test.go is the differential harness of the vectorized operator
// layer: every Operator is driven standalone through Next with
// SplitMix64-randomized batch sizes and compared against a row-at-a-time
// reference implementation written independently of the kernels. The
// assertions are exact — identical output values AND identical charged
// compute cycles — across fixed seeds, randomized sizes/selectivities
// and the degenerate inputs (empty, single row, all-match, none-match).

var diffSeeds = []uint64{1, 7, 42}

// diffRNG is a SplitMix64 stream for deterministic randomized inputs.
type diffRNG struct{ hashmix.Stream }

func newDiffRNG(seed uint64) *diffRNG {
	return &diffRNG{hashmix.Stream{State: seed*2654435761 + 1}}
}

func (r *diffRNG) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

func (r *diffRNG) f64() float64 { return float64(r.Next()>>11) / float64(1<<53) }

// diffSizes are the input cardinalities every operator case runs at:
// empty, single row, small, and a randomized mid-size batch.
func diffSizes(r *diffRNG) []int {
	return []int{0, 1, 13, 64 + r.intn(200)}
}

// drain drives op to exhaustion with randomized Next sizes, returning
// every output value in emission order.
func drain(op Operator, r *diffRNG) (oi []int64, of []float64) {
	for {
		b := op.Next(1 + r.intn(17))
		if b == nil {
			return oi, of
		}
		oi = append(oi, b.I...)
		of = append(of, b.F...)
	}
}

func eqI64(t *testing.T, label string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: value %d = %d, want %d", label, i, got[i], want[i])
		}
	}
}

func eqF64(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: value %d = %g, want %g", label, i, got[i], want[i])
		}
	}
}

func eqCycles(t *testing.T, label string, op Operator, want uint64) {
	t.Helper()
	if got := op.Charged(); got != want {
		t.Fatalf("%s: charged %d cycles, want %d", label, got, want)
	}
}

// genI64 returns n values in [0, span).
func genI64(r *diffRNG, n, span int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.intn(span))
	}
	return out
}

func genF64(r *diffRNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// genCand returns a sorted random subset of rows [0, n) as OIDs.
func genCand(r *diffRNG, n int) []int64 {
	var out []int64
	for i := 0; i < n; i++ {
		if r.intn(3) > 0 {
			out = append(out, int64(i))
		}
	}
	return out
}

// diffPred pairs an engine predicate with an independent row test.
type diffPred struct {
	name string
	kind Kind
	p    Pred
	refI func(v int64) bool
	refF func(v float64) bool
}

func diffPreds() []diffPred {
	return []diffPred{
		{"irange", KindI64, PredIRange(20, 60), func(v int64) bool { return v >= 20 && v < 60 }, nil},
		{"ieq", KindI64, PredIEq(5), func(v int64) bool { return v == 5 }, nil},
		{"iin", KindI64, PredIIn(1, 2, 3), func(v int64) bool { return v == 1 || v == 2 || v == 3 }, nil},
		{"iall", KindI64, PredAll(), func(int64) bool { return true }, nil},
		{"inone", KindI64, PredIEq(-1), func(int64) bool { return false }, nil},
		{"igeneric", KindI64, Pred{I: func(v int64) bool { return v%7 == 0 }}, func(v int64) bool { return v%7 == 0 }, nil},
		{"frange", KindF64, PredFRange(0.2, 0.6), nil, func(v float64) bool { return v >= 0.2 && v <= 0.6 }},
		{"fless", KindF64, PredFLess(0.3), nil, func(v float64) bool { return v < 0.3 }},
		{"fall", KindF64, PredFRange(-1, 2), nil, func(v float64) bool { return v >= -1 && v <= 2 }},
		{"fnone", KindF64, PredFLess(-1), nil, func(v float64) bool { return v < -1 }},
		{"fgeneric", KindF64, Pred{F: func(v float64) bool { return v > 0.5 }}, nil, func(v float64) bool { return v > 0.5 }},
	}
}

// predColumn builds a column of the predicate's kind.
func predColumn(r *diffRNG, pd diffPred, n int) *BAT {
	if pd.kind == KindI64 {
		return NewI64("c", genI64(r, n, 100))
	}
	return NewF64("c", genF64(r, n))
}

func refMatch(pd diffPred, col *BAT, row int) bool {
	if pd.kind == KindI64 {
		return pd.refI(col.I[row])
	}
	return pd.refF(col.F[row])
}

func TestDiffFilterScan(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			for _, pd := range diffPreds() {
				col := predColumn(r, pd, size)
				// Full range and a strict sub-range.
				for _, rng := range [][2]int{{0, size}, {size / 3, size - size/3}} {
					lo, hi := rng[0], rng[1]
					if hi < lo {
						hi = lo
					}
					var want []int64
					for i := lo; i < hi; i++ {
						if refMatch(pd, col, i) {
							want = append(want, int64(i))
						}
					}
					op := NewFilterScan(col, pd.p, lo, hi, nil)
					got, _ := drain(op, r)
					label := pd.name
					eqI64(t, label, got, want)
					eqCycles(t, label, op, uint64(hi-lo)*cyclesScan)
				}
			}
		}
	}
}

func TestDiffFilterRefine(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			for _, pd := range diffPreds() {
				col := predColumn(r, pd, size)
				cand := NewI64("cand", genCand(r, size))
				var want []int64
				for _, oid := range cand.I {
					if refMatch(pd, col, int(oid)) {
						want = append(want, oid)
					}
				}
				op := NewFilterRefine(col, pd.p, cand, nil)
				got, _ := drain(op, r)
				eqI64(t, pd.name, got, want)
				eqCycles(t, pd.name, op, uint64(cand.Len())*cyclesGather)
			}
		}
	}
}

func TestDiffGather(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			cand := NewI64("cand", genCand(r, size))
			// Integer column.
			colI := NewI64("ci", genI64(r, size, 1000))
			wantI := make([]int64, 0, cand.Len())
			for _, oid := range cand.I {
				wantI = append(wantI, colI.I[oid])
			}
			opI := NewGather(colI, cand, NewI64("out", nil))
			gotI, _ := drain(opI, r)
			eqI64(t, "gather-i64", gotI, wantI)
			eqCycles(t, "gather-i64", opI, uint64(cand.Len())*cyclesGather)
			// Float column.
			colF := NewF64("cf", genF64(r, size))
			wantF := make([]float64, 0, cand.Len())
			for _, oid := range cand.I {
				wantF = append(wantF, colF.F[oid])
			}
			opF := NewGather(colF, cand, NewF64("out", nil))
			_, gotF := drain(opF, r)
			eqF64(t, "gather-f64", gotF, wantF)
			eqCycles(t, "gather-f64", opF, uint64(cand.Len())*cyclesGather)
		}
	}
}

func TestDiffMapBinary(t *testing.T) {
	f := func(x, y float64) float64 { return x*y + 1 }
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			a := NewF64("a", genF64(r, size))
			b := NewF64("b", genF64(r, size))
			want := make([]float64, size)
			for i := range want {
				want[i] = f(a.F[i], b.F[i])
			}
			op := NewMapBinary(a, b, f, nil)
			_, got := drain(op, r)
			eqF64(t, "map2", got, want)
			eqCycles(t, "map2", op, uint64(size)*cyclesMap)
		}
	}
}

func TestDiffSumAgg(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			in := NewF64("v", genF64(r, size))
			want := 0.0
			for _, v := range in.F {
				want += v
			}
			op := NewSumAgg(in)
			_, got := drain(op, r)
			// The sum arrives as exactly one final value, even on empty
			// input (sum 0).
			eqF64(t, "sum", got, []float64{want})
			eqCycles(t, "sum", op, uint64(size)*cyclesSum)
		}
	}
}

func TestDiffHashBuild(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			keys := NewI64("k", genI64(r, size, size/2+1)) // forced duplicates
			cases := []struct {
				name string
				vals *BAT
			}{
				{"membership", nil},
				{"payload-i64", NewI64("v", genI64(r, size, 1000))},
				{"payload-f64", NewF64("v", genF64(r, size))},
			}
			for _, tc := range cases {
				want := map[int64]int64{}
				for i, k := range keys.I {
					payload := int64(1)
					if tc.vals != nil {
						if tc.vals.Kind == KindI64 {
							payload = tc.vals.I[i]
						} else {
							payload = int64(tc.vals.F[i])
						}
					}
					want[k] = payload
				}
				set := &i64Map{}
				op := NewHashBuild(keys, tc.vals, set)
				got, _ := drain(op, r)
				eqI64(t, tc.name, got, []int64{int64(len(want))})
				if set.Len() != len(want) {
					t.Fatalf("%s: table holds %d keys, want %d", tc.name, set.Len(), len(want))
				}
				for k, v := range want {
					if gv, ok := set.Get(k); !ok || gv != v {
						t.Fatalf("%s: key %d = (%d, %v), want (%d, true)", tc.name, k, gv, ok, v)
					}
				}
				eqCycles(t, tc.name, op, uint64(size)*cyclesBuild)
			}
		}
	}
}

func TestDiffHashProbe(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			col := NewI64("c", genI64(r, size, 50))
			cand := NewI64("cand", genCand(r, size))
			sets := []struct {
				name string
				fill func(*i64Map)
			}{
				{"mixed", func(m *i64Map) {
					for v := int64(0); v < 25; v++ {
						m.Put(v, v*10)
					}
				}},
				{"all-match", func(m *i64Map) {
					for v := int64(0); v < 50; v++ {
						m.Put(v, v)
					}
				}},
				{"none-match", func(*i64Map) {}},
			}
			for _, sc := range sets {
				for _, mode := range []struct {
					name        string
					anti, fetch bool
				}{{"semi", false, false}, {"anti", true, false}, {"fetch", false, true}} {
					set := &i64Map{}
					sc.fill(set)
					want := map[int64]int64{}
					set.Range(func(k, v int64) { want[k] = v })
					var wantIDs, wantPays []int64
					for _, oid := range cand.I {
						payload, hit := want[col.I[oid]], false
						if _, ok := want[col.I[oid]]; ok {
							hit = true
						}
						if hit == mode.anti {
							continue
						}
						wantIDs = append(wantIDs, oid)
						if mode.fetch {
							wantPays = append(wantPays, payload)
						}
					}
					label := sc.name + "/" + mode.name
					op := NewHashProbe(col, cand, set, mode.anti, mode.fetch, nil, nil)
					got, _ := drain(op, r)
					eqI64(t, label, got, wantIDs)
					if mode.fetch {
						eqI64(t, label+" payloads", op.Payloads(), wantPays)
					}
					eqCycles(t, label, op, uint64(cand.Len())*cyclesProbe)
				}
			}
		}
	}
}

func TestDiffGroupAgg(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			keys := NewI64("k", genI64(r, size, size/4+1))
			for _, tc := range []struct {
				name string
				vals *BAT
			}{{"count", nil}, {"sum", NewF64("v", genF64(r, size))}} {
				want := map[int64]float64{}
				for i, k := range keys.I {
					v := 1.0
					if tc.vals != nil {
						v = tc.vals.F[i]
					}
					want[k] += v
				}
				wantKeys := make([]int64, 0, len(want))
				for k := range want {
					wantKeys = append(wantKeys, k)
				}
				sort.Slice(wantKeys, func(a, b int) bool { return wantKeys[a] < wantKeys[b] })

				agg := &i64fMap{}
				op := NewGroupAgg(keys, tc.vals, agg)
				got, _ := drain(op, r)
				eqI64(t, tc.name, got, wantKeys)
				consumed := uint64(size) * cyclesGroup
				eqCycles(t, tc.name, op, consumed)

				gk, gs := op.Finalize()
				eqI64(t, tc.name+" finalize keys", gk, wantKeys)
				wantSums := make([]float64, len(wantKeys))
				for i, k := range wantKeys {
					wantSums[i] = want[k]
				}
				eqF64(t, tc.name+" finalize sums", gs, wantSums)
				// Finalize charges the engine's merge formula on top.
				eqCycles(t, tc.name+" finalized", op,
					consumed+uint64(agg.Len())*cyclesGroup+uint64(len(gk))*cyclesSort)
			}
		}
	}
}

// refTopN is an independent stable top-n: repeatedly scan for the
// leftmost strictly-largest remaining sum.
func refTopN(sums []float64, n int) []int {
	taken := make([]bool, len(sums))
	if n > len(sums) {
		n = len(sums)
	}
	if n < 0 {
		n = 0
	}
	out := make([]int, 0, n)
	for len(out) < n {
		best := -1
		for i := range sums {
			if taken[i] {
				continue
			}
			if best == -1 || sums[i] > sums[best] {
				best = i
			}
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}

func TestDiffSortLimit(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			keys := NewI64("k", genI64(r, size, 10000))
			// Sums from a tiny value set force ties, so stable ranking is
			// actually exercised.
			sumVals := genI64(r, size, 4)
			sums := make([]float64, size)
			for i, v := range sumVals {
				sums[i] = float64(v)
			}
			sumsBAT := NewF64("s", sums)
			for _, n := range []int{0, 1, 3, size, size + 7} {
				idx := refTopN(sums, n)
				wantKeys := make([]int64, len(idx))
				wantSums := make([]float64, len(idx))
				for i, j := range idx {
					wantKeys[i] = keys.I[j]
					wantSums[i] = sums[j]
				}
				op := NewSortLimit(keys, sumsBAT, n)
				got, _ := drain(op, r)
				eqI64(t, "topn keys", got, wantKeys)
				eqF64(t, "topn sums", op.Sums(), wantSums)
				eqCycles(t, "topn", op, uint64(size)*cyclesSort)
			}
		}
	}
}

// refProbeCount re-derives the bisection probe count for one key: the
// halving steps of the [lo, hi) search, which is what the operator and
// the PointLookup stage both charge (+1 for the final fetch).
func refProbeCount(keys []int64, key int64) int {
	count := 0
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		count++
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return count
}

func TestDiffLookup(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			// Sorted unique keys with gaps, so absent probes exist between
			// present ones.
			keys := make([]int64, size)
			next := int64(0)
			for i := range keys {
				next += int64(1 + r.intn(3))
				keys[i] = next
			}
			keyBAT := NewI64("k", keys)
			valF := NewF64("v", genF64(r, size))
			valI := NewI64("v", genI64(r, size, 1000))

			probeSets := map[string][]int64{
				"empty":  nil,
				"single": {next / 2},
				"mixed":  nil,
			}
			var mixed []int64
			for i := 0; i < size; i++ {
				if r.intn(2) == 0 {
					mixed = append(mixed, keys[r.intn(size)]) // present
				} else {
					mixed = append(mixed, int64(r.intn(int(next)+3))-1) // maybe absent
				}
			}
			mixed = append(mixed, -5, next+100) // below min, above max
			probeSets["mixed"] = mixed

			for name, probes := range probeSets {
				for _, val := range []*BAT{valF, valI} {
					var wantI []int64
					var wantF []float64
					wantFound, wantCycles := 0, uint64(0)
					for _, key := range probes {
						wantCycles += uint64(refProbeCount(keys, key)+1) * cyclesProbe
						row := -1
						for i, k := range keys {
							if k == key {
								row = i
								break
							}
						}
						if row < 0 {
							continue
						}
						wantFound++
						if val.Kind == KindI64 {
							wantI = append(wantI, val.I[row])
						} else {
							wantF = append(wantF, val.F[row])
						}
					}
					op := NewLookup(keyBAT, val, probes)
					gotI, gotF := drain(op, r)
					eqI64(t, name, gotI, wantI)
					eqF64(t, name, gotF, wantF)
					if op.Found != wantFound {
						t.Fatalf("%s: found %d keys, want %d", name, op.Found, wantFound)
					}
					eqCycles(t, name, op, wantCycles)
				}
			}
		}
	}
}

func TestDiffFusedQ6(t *testing.T) {
	for _, seed := range diffSeeds {
		r := newDiffRNG(seed)
		for _, size := range diffSizes(r) {
			sd := make([]int64, size)
			for i := range sd {
				sd[i] = int64(19960101 + r.intn(40000))
			}
			qty := make([]float64, size)
			dis := make([]float64, size)
			pr := make([]float64, size)
			for i := 0; i < size; i++ {
				qty[i] = float64(r.intn(50))
				dis[i] = float64(r.intn(11)) / 100
				pr[i] = 100 + float64(r.intn(900))
			}
			shipdate, quantity := NewI64("sd", sd), NewF64("q", qty)
			discount, price := NewF64("d", dis), NewF64("p", pr)
			for _, rng := range [][2]int{{0, size}, {size / 4, size / 2}} {
				lo, hi := rng[0], rng[1]
				want := 0.0
				for i := lo; i < hi; i++ {
					if sd[i] >= 19970101 && sd[i] < 19980101 &&
						dis[i] >= 0.06 && dis[i] <= 0.08 && qty[i] < 24 {
						want += pr[i] * dis[i]
					}
				}
				op := NewFusedQ6(shipdate, quantity, discount, price, lo, hi)
				_, got := drain(op, r)
				eqF64(t, "q6", got, []float64{want})
				if op.Revenue() != want {
					t.Fatalf("q6: revenue %g, want %g", op.Revenue(), want)
				}
				eqCycles(t, "q6", op, uint64(hi-lo)*cyclesScan)
			}
		}
	}
}

// TestDiffNextZero pins the n <= 0 contract: before exhaustion the batch
// is non-nil and empty, and nothing is charged.
func TestDiffNextZero(t *testing.T) {
	col := NewI64("c", []int64{1, 2, 3})
	ops := []Operator{
		NewFilterScan(col, PredAll(), 0, 3, nil),
		NewFilterRefine(col, PredAll(), NewI64("cand", []int64{0, 1}), nil),
		NewGather(col, NewI64("cand", []int64{0, 1}), NewI64("out", nil)),
		NewMapBinary(NewF64("a", []float64{1}), NewF64("b", []float64{2}), func(x, y float64) float64 { return x + y }, nil),
		NewSumAgg(NewF64("v", []float64{1, 2})),
		NewHashBuild(col, nil, &i64Map{}),
		NewHashProbe(col, NewI64("cand", []int64{0}), &i64Map{}, false, false, nil, nil),
		NewGroupAgg(col, nil, &i64fMap{}),
		NewSortLimit(col, NewF64("s", []float64{1, 2, 3}), 2),
		NewLookup(col, NewF64("v", []float64{1, 2, 3}), []int64{2}),
		NewFusedQ6(NewI64("sd", []int64{19970201}), NewF64("q", []float64{1}), NewF64("d", []float64{0.07}), NewF64("p", []float64{100}), 0, 1),
	}
	for _, op := range ops {
		for _, n := range []int{0, -3} {
			b := op.Next(n)
			if b == nil {
				t.Fatalf("%s: Next(%d) before exhaustion returned nil", op.Op(), n)
			}
			if b.Len() != 0 {
				t.Fatalf("%s: Next(%d) produced %d values", op.Op(), n, b.Len())
			}
		}
		if op.Charged() != 0 {
			t.Fatalf("%s: charged %d cycles for zero-size batches", op.Op(), op.Charged())
		}
	}
}
