package db

import (
	"math"
	"strings"
	"testing"
)

// newSpecRig extends the db rig with a second, smaller table so compile
// validation of cross-table mistakes and point lookups has something to
// trip on: "tiny" holds a sorted integer key column k (0..63) and a float
// payload v.
func newSpecRig(t *testing.T) *rig {
	t.Helper()
	r := newDBRig(t, 512, PlacementOS)
	const rows = 64
	k := make([]int64, rows)
	v := make([]float64, rows)
	for i := range k {
		k[i] = int64(i)
		v[i] = float64(i) * 1.5
	}
	if _, err := r.store.CreateTable("tiny", map[string]*BAT{
		"k": NewI64("k", k),
		"v": NewF64("v", v),
	}); err != nil {
		t.Fatal(err)
	}
	return r
}

// q6Spec is the handwritten q6Plan expressed declaratively.
func q6Spec() PlanSpec {
	return NewPlanSpec("Q6-spec").
		Scan("lineitem", "l_quantity", "X_1", PredFLess(24)).
		Refine("X_1", "lineitem", "l_shipdate", "X_2", PredIRange(19970101, 19980101)).
		Refine("X_2", "lineitem", "l_discount", "X_3", PredFRange(0.06, 0.08)).
		Project("X_3", "lineitem", "l_extendedprice", "X_4").
		Project("X_3", "lineitem", "l_discount", "X_5").
		Map2("X_4", "X_5", "X_6", func(x, y float64) float64 { return x * y }).
		Sum("X_6", "revenue").
		Spec()
}

func TestPlanSpecCompilesAndMatchesHandwrittenQ6(t *testing.T) {
	r := newSpecRig(t)
	plan, err := q6Spec().Compile(r.store)
	if err != nil {
		t.Fatal(err)
	}
	q := r.eng.Submit(plan)
	r.run(t, q)
	want := q6Reference(r.store)
	if got := q.Scalar("revenue"); math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Errorf("spec-compiled revenue = %g, want %g", got, want)
	}
}

func TestPlanSpecJoinGroupPipeline(t *testing.T) {
	// Count cheap lineitem rows per orderkey, via the full build / probe /
	// group / merge / filter / topn surface, then a point lookup on tiny.
	r := newSpecRig(t)
	spec := NewPlanSpec("join-group").
		Scan("lineitem", "l_extendedprice", "cheap", PredFLess(300)).
		Project("cheap", "lineitem", "l_orderkey", "keys").
		Build("keys", "", "orders-seen").
		ScanAll("lineitem", "l_orderkey", "all").
		ProbeSemi("all", "lineitem", "l_orderkey", "orders-seen", "hit").
		Project("hit", "lineitem", "l_orderkey", "hitkeys").
		GroupSum("hitkeys", "", "parts").
		GroupMerge("parts", "gk", "gs").
		GroupFilter("gk", "gs", func(sum float64) bool { return sum >= 4 }).
		TopN("gk", "gs", 5).
		Count("gk", "groups").
		Lookup("tiny", "k", "v", 40, "point").
		Spec()
	plan, err := spec.Compile(r.store)
	if err != nil {
		t.Fatal(err)
	}
	q := r.eng.Submit(plan)
	r.run(t, q)

	// Reference: rows with price < 300 mark their orderkey; every lineitem
	// row of a marked order counts toward its group.
	li := r.store.Table("lineitem")
	price, keys := li.Col("l_extendedprice").F, li.Col("l_orderkey").I
	marked := map[int64]bool{}
	for i, p := range price {
		if p < 300 {
			marked[keys[i]] = true
		}
	}
	counts := map[int64]int{}
	for _, k := range keys {
		if marked[k] {
			counts[k]++
		}
	}
	kept := 0
	for _, n := range counts {
		if n >= 4 {
			kept++
		}
	}
	wantGroups := kept
	if wantGroups > 5 {
		wantGroups = 5
	}
	if got := int(q.Scalar("groups")); got != wantGroups {
		t.Errorf("groups = %d, want %d", got, wantGroups)
	}
	if got := q.Scalar("point"); got != 60 {
		t.Errorf("point lookup = %g, want 60", got)
	}
	if got := q.Scalar("point.found"); got != 1 {
		t.Errorf("point.found = %g, want 1", got)
	}
}

func TestPlanSpecCompileRejects(t *testing.T) {
	mul := func(x, y float64) float64 { return x * y }
	cases := []struct {
		name string
		spec PlanSpec
		want string
	}{
		{"unknown table", NewPlanSpec("t").Scan("ghost", "c", "a", PredAll()).Spec(), "unknown table"},
		{"unknown column", NewPlanSpec("t").Scan("lineitem", "nope", "a", PredAll()).Spec(), "no column"},
		{"pred kind mismatch", NewPlanSpec("t").Scan("lineitem", "l_shipdate", "a", PredFLess(1)).Spec(), "integer predicate"},
		{"missing scan out", NewPlanSpec("t").Scan("lineitem", "l_shipdate", "", PredIEq(1)).Spec(), "missing output"},
		{"undefined refine input", NewPlanSpec("t").Refine("a", "lineitem", "l_shipdate", "b", PredIEq(1)).Spec(), "undefined variable"},
		{"cross-table candidates", NewPlanSpec("t").
			ScanAll("tiny", "k", "a").
			Project("a", "lineitem", "l_discount", "b").Spec(), "indexes table"},
		{"misaligned map2", NewPlanSpec("t").
			ScanAll("lineitem", "l_orderkey", "a").
			ScanAll("lineitem", "l_orderkey", "b").
			Project("a", "lineitem", "l_discount", "x").
			Project("b", "lineitem", "l_discount", "y").
			Map2("x", "y", "z", mul).Spec(), "not aligned"},
		{"map2 over candidate", NewPlanSpec("t").
			ScanAll("lineitem", "l_orderkey", "a").
			Map2("a", "a", "z", mul).Spec(), "not a value vector"},
		{"missing map fn", PlanSpec{Name: "t", Ops: []OpSpec{
			{Kind: OpScan, Table: "lineitem", Col: "l_orderkey", Out: "a", Pred: PredAll()},
			{Kind: OpProject, Table: "lineitem", Col: "l_discount", In: "a", Out: "x"},
			{Kind: OpMap2, In: "x", In2: "x", Out: "z"},
		}}, "missing map function"},
		{"sum over i64", NewPlanSpec("t").
			ScanAll("lineitem", "l_orderkey", "a").
			Project("a", "lineitem", "l_orderkey", "x").
			Sum("x", "s").Spec(), "wrong value kind"},
		{"probe float column", NewPlanSpec("t").
			ScanAll("lineitem", "l_orderkey", "a").
			Project("a", "lineitem", "l_orderkey", "x").
			Build("x", "", "set").
			ProbeSemi("a", "lineitem", "l_discount", "set", "b").Spec(), "must be integer"},
		{"undefined set", NewPlanSpec("t").
			ScanAll("lineitem", "l_orderkey", "a").
			ProbeSemi("a", "lineitem", "l_orderkey", "set", "b").Spec(), "undefined set"},
		{"undefined partials", NewPlanSpec("t").GroupMerge("p", "k", "s").Spec(), "undefined partials"},
		{"merge outputs collide", PlanSpec{Name: "t", Ops: []OpSpec{
			{Kind: OpScan, Table: "lineitem", Col: "l_orderkey", Out: "a", Pred: PredAll()},
			{Kind: OpProject, Table: "lineitem", Col: "l_orderkey", In: "a", Out: "x"},
			{Kind: OpGroupSum, In: "x", Out: "p"},
			{Kind: OpGroupMerge, In: "p", Out: "k", Out2: "k"},
		}}, "must differ"},
		{"negative topn", PlanSpec{Name: "t", Ops: []OpSpec{
			{Kind: OpScan, Table: "lineitem", Col: "l_orderkey", Out: "a", Pred: PredAll()},
			{Kind: OpProject, Table: "lineitem", Col: "l_orderkey", In: "a", Out: "x"},
			{Kind: OpGroupSum, In: "x", Out: "p"},
			{Kind: OpGroupMerge, In: "p", Out: "k", Out2: "s"},
			{Kind: OpTopN, In: "k", In2: "s", N: -3},
		}}, "negative group budget"},
		{"lookup float key", NewPlanSpec("t").Lookup("tiny", "v", "k", 3, "out").Spec(), "must be integer"},
		{"unknown kind", PlanSpec{Name: "t", Ops: []OpSpec{{Kind: OpKind(99)}}}, "unknown operator kind"},
	}
	r := newSpecRig(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Compile(r.store)
			if err == nil {
				t.Fatalf("compile accepted an invalid spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// fuzzTables etc. are the pools FuzzPlanBuild draws from: a mix of valid
// and invalid names, well- and ill-typed predicates.
var (
	fuzzTables = []string{"lineitem", "tiny", "ghost"}
	fuzzCols   = []string{"l_shipdate", "l_quantity", "l_discount", "l_extendedprice", "l_orderkey", "k", "v", "nope"}
	fuzzNames  = []string{"a", "b", "c", "d", ""}
	fuzzPreds  = []Pred{
		PredAll(),
		PredIRange(19970101, 19980101),
		PredFRange(0.0, 0.05),
		PredFLess(24),
		PredIEq(3),
		PredIIn(1, 2, 3),
		{}, // typeless: invalid against every column
		{I: func(v int64) bool { return v%2 == 0 }},
		{F: func(v float64) bool { return v > 1 }},
	}
)

// fuzzSpecOpBytes is the fixed byte budget of one decoded OpSpec.
const fuzzSpecOpBytes = 13

// fuzzSpec decodes raw fuzz bytes into a PlanSpec: every op consumes a
// fixed window of bytes indexing the pools above, so any input maps to a
// structurally arbitrary — frequently invalid — composition.
func fuzzSpec(data []byte) PlanSpec {
	spec := PlanSpec{Name: "fuzz"}
	mul := func(x, y float64) float64 { return x * y }
	keep := func(sum float64) bool { return sum >= 2 }
	for pos := 0; pos+fuzzSpecOpBytes <= len(data) && len(spec.Ops) < 24; pos += fuzzSpecOpBytes {
		w := data[pos : pos+fuzzSpecOpBytes]
		op := OpSpec{
			// Two spare kind values exercise the unknown-kind rejection.
			Kind:  OpKind(int(w[0]) % 17),
			Table: fuzzTables[int(w[1])%len(fuzzTables)],
			Col:   fuzzCols[int(w[2])%len(fuzzCols)],
			Col2:  fuzzCols[int(w[3])%len(fuzzCols)],
			In:    fuzzNames[int(w[4])%len(fuzzNames)],
			In2:   fuzzNames[int(w[5])%len(fuzzNames)],
			Out:   fuzzNames[int(w[6])%len(fuzzNames)],
			Out2:  fuzzNames[int(w[7])%len(fuzzNames)],
			Pred:  fuzzPreds[int(w[8])%len(fuzzPreds)],
			N:     int(int8(w[11])),
			Key:   int64(w[12]) - 64,
		}
		if w[9]%2 == 0 {
			op.Map = mul
		}
		if w[10]%2 == 0 {
			op.Keep = keep
		}
		spec.Ops = append(spec.Ops, op)
	}
	return spec
}

// fuzzSeedOp encodes one op for the seed corpus (same layout fuzzSpec
// decodes).
func fuzzSeedOp(kind, table, col, col2, in, in2, out, out2, pred int) []byte {
	return []byte{
		byte(kind), byte(table), byte(col), byte(col2),
		byte(in), byte(in2), byte(out), byte(out2), byte(pred),
		0, 0, 3, 70,
	}
}

// FuzzPlanBuild feeds arbitrary operator compositions through Compile:
// any input must either yield an executable plan or an error — never a
// panic — and a plan Compile accepts must run to completion without
// tripping the stage builders' internal alignment panics.
func FuzzPlanBuild(f *testing.F) {
	var q6ish []byte
	q6ish = append(q6ish, fuzzSeedOp(0, 0, 1, 0, 0, 0, 0, 0, 3)...) // scan quantity < 24 -> a
	q6ish = append(q6ish, fuzzSeedOp(1, 0, 0, 0, 0, 0, 1, 0, 1)...) // refine shipdate -> b
	q6ish = append(q6ish, fuzzSeedOp(2, 0, 3, 0, 1, 0, 2, 0, 0)...) // project price -> c
	q6ish = append(q6ish, fuzzSeedOp(2, 0, 2, 0, 1, 0, 3, 0, 0)...) // project discount -> d
	q6ish = append(q6ish, fuzzSeedOp(3, 0, 0, 0, 2, 3, 0, 0, 0)...) // map2 c*d -> a
	q6ish = append(q6ish, fuzzSeedOp(4, 0, 0, 0, 0, 0, 1, 0, 0)...) // sum a -> scalar b
	f.Add(q6ish)

	var join []byte
	join = append(join, fuzzSeedOp(0, 0, 4, 0, 0, 0, 0, 0, 0)...)  // scan-all orderkey -> a
	join = append(join, fuzzSeedOp(2, 0, 4, 0, 0, 0, 1, 0, 0)...)  // project orderkey -> b
	join = append(join, fuzzSeedOp(6, 0, 0, 0, 1, 4, 2, 0, 0)...)  // build b -> set c
	join = append(join, fuzzSeedOp(7, 0, 4, 0, 0, 2, 3, 0, 0)...)  // probe-semi a vs c -> d
	join = append(join, fuzzSeedOp(10, 0, 0, 0, 1, 4, 3, 0, 0)...) // group-sum b -> partials d
	join = append(join, fuzzSeedOp(11, 0, 0, 0, 3, 0, 0, 1, 0)...) // merge d -> a/b
	join = append(join, fuzzSeedOp(13, 0, 0, 0, 0, 1, 0, 0, 0)...) // topn a/b
	join = append(join, fuzzSeedOp(14, 1, 5, 6, 0, 0, 0, 0, 0)...) // lookup tiny.k -> v
	f.Add(join)

	f.Add([]byte{})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		spec := fuzzSpec(data)
		r := newSpecRig(t)
		plan, err := spec.Compile(r.store)
		if err != nil {
			return
		}
		q := r.eng.Submit(plan)
		r.run(t, q)
	})
}
