package db

import (
	"math"
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
)

// rig builds a machine + scheduler + store + engine with a small lineitem
// table whose values are deterministic.
type rig struct {
	machine *numa.Machine
	sched   *sched.Scheduler
	store   *Store
	eng     *Engine
	rows    int
}

func newDBRig(t *testing.T, rows int, placement Placement) *rig {
	t.Helper()
	m := numa.NewMachine(numa.Opteron8387())
	// A small quantum gives sub-query time resolution for latency checks.
	sc := sched.New(m, sched.Config{Quantum: m.Topology().SecondsToCycles(50e-6)})
	st := NewStore(m)

	shipdate := make([]int64, rows)
	quantity := make([]float64, rows)
	discount := make([]float64, rows)
	price := make([]float64, rows)
	orderkey := make([]int64, rows)
	for i := 0; i < rows; i++ {
		d := i % 730 // two years of dates as yyyymmdd integers
		year := 1996 + d/365
		day := d % 365
		shipdate[i] = int64(year*10000 + (day/31+1)*100 + day%31 + 1)
		quantity[i] = float64(i % 50)
		discount[i] = float64(i%11) / 100.0
		price[i] = 100 + float64(i%900)
		orderkey[i] = int64(i / 4)
	}
	if _, err := st.CreateTable("lineitem", map[string]*BAT{
		"l_shipdate":      NewI64("l_shipdate", shipdate),
		"l_quantity":      NewF64("l_quantity", quantity),
		"l_discount":      NewF64("l_discount", discount),
		"l_extendedprice": NewF64("l_extendedprice", price),
		"l_orderkey":      NewI64("l_orderkey", orderkey),
	}); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(st, Config{Scheduler: sc, PID: 100, Placement: placement, MinPartRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{machine: m, sched: sc, store: st, eng: eng, rows: rows}
}

// run ticks the scheduler until the queries finish or the test times out.
func (r *rig) run(t *testing.T, qs ...*Query) {
	t.Helper()
	allDone := func() bool {
		for _, q := range qs {
			if !q.Done() {
				return false
			}
		}
		return true
	}
	if !r.sched.RunUntil(allDone, r.machine.Topology().SecondsToCycles(300)) {
		t.Fatal("queries did not finish within the simulated time limit")
	}
}

// q6Plan builds the paper's Q6 (Figure 3 MAL listing) over the rig's
// synthetic lineitem.
func q6Plan() *Plan {
	return &Plan{Name: "Q6", Stages: []StageFn{
		ThetaSelect("lineitem", "l_quantity", "X_1", Pred{F: func(v float64) bool { return v < 24 }}),
		SubSelect("X_1", "lineitem", "l_shipdate", "X_2", PredIRange(19970101, 19980101)),
		SubSelect("X_2", "lineitem", "l_discount", "X_3", PredFRange(0.06, 0.08)),
		Projection("X_3", "lineitem", "l_extendedprice", "X_4"),
		Projection("X_3", "lineitem", "l_discount", "X_5"),
		MapF2("X_4", "X_5", "X_6", func(x, y float64) float64 { return x * y }),
		SumF("X_6", "revenue"),
	}}
}

// q6Reference computes Q6's answer directly from the base columns.
func q6Reference(st *Store) float64 {
	li := st.Table("lineitem")
	sd, qty := li.Col("l_shipdate").I, li.Col("l_quantity").F
	dis, pr := li.Col("l_discount").F, li.Col("l_extendedprice").F
	var rev float64
	for i := 0; i < li.Rows; i++ {
		if sd[i] >= 19970101 && sd[i] < 19980101 && dis[i] >= 0.06 && dis[i] <= 0.08 && qty[i] < 24 {
			rev += pr[i] * dis[i]
		}
	}
	return rev
}

func TestQ6MatchesReference(t *testing.T) {
	r := newDBRig(t, 20000, PlacementOS)
	q := r.eng.Submit(q6Plan())
	r.run(t, q)
	want := q6Reference(r.store)
	got := q.Scalar("revenue")
	if want == 0 {
		t.Fatal("reference revenue is zero; synthetic data broken")
	}
	if math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Errorf("revenue = %g, want %g", got, want)
	}
}

func TestQ6DeterministicAcrossRuns(t *testing.T) {
	run := func() float64 {
		r := newDBRig(t, 8000, PlacementOS)
		q := r.eng.Submit(q6Plan())
		r.run(t, q)
		return q.Scalar("revenue")
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic results: %g vs %g", a, b)
	}
}

func TestConcurrentQueriesAllFinish(t *testing.T) {
	r := newDBRig(t, 8000, PlacementOS)
	var qs []*Query
	for i := 0; i < 8; i++ {
		qs = append(qs, r.eng.Submit(q6Plan()))
	}
	r.run(t, qs...)
	want := q6Reference(r.store)
	for i, q := range qs {
		if got := q.Scalar("revenue"); math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Errorf("query %d revenue = %g, want %g", i, got, want)
		}
	}
	if r.eng.TasksExecuted == 0 {
		t.Error("no tasks accounted")
	}
	done := r.eng.Drain()
	if len(done) != 8 || r.eng.ActiveQueries() != 0 {
		t.Errorf("Drain returned %d, active %d", len(done), r.eng.ActiveQueries())
	}
}

func TestQueryElapsedAndEvents(t *testing.T) {
	r := newDBRig(t, 8000, PlacementOS)
	var events []TaskEvent
	r.eng.EnsureBus().Subscribe(obs.KindTaskDone, func(e obs.Event) {
		events = append(events, TaskEvent{
			Worker: sched.TID(e.TID), Op: e.Label, Start: e.Start, End: e.Now,
		})
	})
	q := r.eng.Submit(q6Plan())
	r.run(t, q)
	if q.ElapsedCycles() == 0 {
		t.Error("finished query reports zero latency")
	}
	if len(events) == 0 {
		t.Fatal("no task events")
	}
	seenOps := map[string]bool{}
	for _, e := range events {
		if e.End < e.Start {
			t.Error("event ends before it starts")
		}
		seenOps[e.Op] = true
	}
	for _, op := range []string{"algebra.thetasubselect", "algebra.subselect", "algebra.projection", "batcalc.*", "aggr.sum"} {
		if !seenOps[op] {
			t.Errorf("operator %s never traced", op)
		}
	}
}

func TestScanChargesHardwareCounters(t *testing.T) {
	r := newDBRig(t, 20000, PlacementOS)
	q := r.eng.Submit(q6Plan())
	r.run(t, q)
	snap := r.machine.Snapshot()
	if snap.TotalL3Misses() == 0 {
		t.Error("cold scans produced no L3 misses")
	}
	if snap.TotalMinorFaults() == 0 {
		t.Error("first touches produced no minor faults")
	}
	if snap.TotalIMCBytes() == 0 {
		t.Error("no memory traffic accounted")
	}
}

func TestNUMAAwareWorkersArePinned(t *testing.T) {
	r := newDBRig(t, 4000, PlacementNUMAAware)
	for _, w := range r.eng.workers {
		if w.thread.Pinned().IsEmpty() {
			t.Fatal("NUMA-aware worker not pinned")
		}
		if w.thread.Pinned().Count() != 1 {
			t.Errorf("worker pinned to %d cores, want 1", w.thread.Pinned().Count())
		}
	}
	q := r.eng.Submit(q6Plan())
	r.run(t, q)
	want := q6Reference(r.store)
	if got := q.Scalar("revenue"); math.Abs(got-want) > 1e-6*math.Abs(want) {
		t.Errorf("NUMA-aware revenue = %g, want %g", got, want)
	}
}

func TestNUMAAwarePinningHolds(t *testing.T) {
	// The pinned pool must never migrate across nodes, however busy the
	// machine gets; the OS-managed engine's threads may and do migrate.
	r := newDBRig(t, 40000, PlacementNUMAAware)
	topo := r.machine.Topology()
	workerTIDs := map[sched.TID]bool{}
	for _, w := range r.eng.workers {
		workerTIDs[w.thread.ID] = true
	}
	r.sched.EnsureBus().Subscribe(obs.KindMigration, func(e obs.Event) {
		if workerTIDs[sched.TID(e.TID)] && topo.NodeOf(numa.CoreID(e.From)) != topo.NodeOf(numa.CoreID(e.Core)) {
			t.Errorf("pinned worker %d migrated %d -> %d", e.TID, e.From, e.Core)
		}
	})
	var qs []*Query
	for i := 0; i < 4; i++ {
		qs = append(qs, r.eng.Submit(q6Plan()))
	}
	r.run(t, qs...)
	want := q6Reference(r.store)
	for _, q := range qs {
		if got := q.Scalar("revenue"); math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Errorf("revenue = %g, want %g", got, want)
		}
	}
}

func TestNUMAAwareDispatchPrefersDataNode(t *testing.T) {
	// After a warm-up query homes the base columns, a second query's scan
	// tasks must carry the home node as their dispatch preference.
	r := newDBRig(t, 40000, PlacementNUMAAware)
	q1 := r.eng.Submit(q6Plan())
	r.run(t, q1)
	// Build the same first-stage tasks by hand and check their hints.
	li := r.store.Table("lineitem")
	c := li.Col("l_quantity")
	topo := r.machine.Topology()
	hinted := 0
	ranges := partitionRanges(li.Rows, 16, 256)
	for _, rng := range ranges {
		tk := newChunkTask("probe", r.machine, []*BAT{c}, rng[0], rng[1], cyclesScan)
		if tk.PreferredNode() != numa.NoNode {
			hinted++
			if got := c.HomeOfRow(r.machine.Memory(), topo.BlockBytes, rng[0]); got != tk.PreferredNode() {
				t.Errorf("task pref %d != home %d", tk.PreferredNode(), got)
			}
		}
	}
	if hinted == 0 {
		t.Error("no scan task carried a dispatch hint after warm-up")
	}
}

func TestRawQ6MatchesReference(t *testing.T) {
	r := newDBRig(t, 20000, PlacementOS)
	for _, aff := range []RawAffinity{RawOS, RawDense, RawSparse} {
		k, err := SpawnRawQ6(r.store, r.sched, 200+int(aff), 8, aff)
		if err != nil {
			t.Fatal(err)
		}
		if !r.sched.RunUntil(k.Done, r.machine.Topology().SecondsToCycles(120)) {
			t.Fatalf("raw kernel (%v) did not finish", aff)
		}
		want := q6Reference(r.store)
		if math.Abs(k.Revenue-want) > 1e-6*math.Abs(want) {
			t.Errorf("raw %v revenue = %g, want %g", aff, k.Revenue, want)
		}
	}
}

func TestRawAffinityPinsThreads(t *testing.T) {
	r := newDBRig(t, 4000, PlacementOS)
	topo := r.machine.Topology()
	var migrated bool
	r.sched.EnsureBus().Subscribe(obs.KindMigration, func(e obs.Event) {
		if topo.NodeOf(numa.CoreID(e.From)) != topo.NodeOf(numa.CoreID(e.Core)) {
			migrated = true
		}
	})
	k, err := SpawnRawQ6(r.store, r.sched, 300, 4, RawDense)
	if err != nil {
		t.Fatal(err)
	}
	r.sched.RunUntil(k.Done, topo.SecondsToCycles(120))
	if migrated {
		t.Error("dense-pinned raw threads migrated across nodes")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	m := numa.NewMachine(numa.Opteron8387())
	st := NewStore(m)
	if _, err := NewEngine(st, Config{PID: 1}); err == nil {
		t.Error("missing scheduler accepted")
	}
	sc := sched.New(m, sched.Config{})
	if _, err := NewEngine(st, Config{Scheduler: sc}); err == nil {
		t.Error("missing PID accepted")
	}
}
