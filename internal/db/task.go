package db

import (
	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// Task is one partition of one operator: the unit dispatched to worker
// threads. Step consumes up to budget cycles and reports progress; tasks
// are resumable across scheduler quanta.
type Task interface {
	// Step runs on the worker's current core. used may slightly exceed
	// budget when a chunk cannot be split (the scheduler clamps).
	Step(ctx *sched.ExecContext, budget uint64) (used uint64, done bool)
	// Op returns the operator label, e.g. "algebra.thetasubselect"
	// (tomograph traces).
	Op() string
	// PreferredNode returns the node the task's input data lives on, or
	// numa.NoNode (NUMA-aware dispatch hint).
	PreferredNode() numa.NodeID
}

// chunkTask is the shared implementation of partition tasks: it walks rows
// [lo, hi) in chunks, charging simulated accesses on the inputs and
// running the real computation, then materializes its output with write
// accesses on the executing core (first touch places the intermediate
// where it was produced).
type chunkTask struct {
	op     string
	inputs []*BAT // charged per chunk
	lo, hi int
	chunk  int // rows per step iteration

	cursor         int
	cyclesPerTuple uint64
	pref           numa.NodeID

	// process runs the real computation for rows [a, b).
	process func(a, b int)
	// extraCharge, if set, charges additional simulated accesses for rows
	// [a, b) (gather operators charge the underlying column here).
	extraCharge func(ctx *sched.ExecContext, a, b int) uint64
	// finish materializes the partition output; it may return BATs to
	// charge as written (their regions get homed here).
	finish func(ctx *sched.ExecContext) []*BAT

	finished bool
	onDone   func()
	// debt carries cycles owed beyond the last quantum's budget: a chunk
	// is atomic, so its overshoot is paid down across subsequent quanta.
	// Without this, congestion-stretched access costs would be silently
	// truncated at the quantum boundary and bandwidth limits would not
	// bind.
	debt uint64
}

// newChunkTask builds a task over [lo, hi) with a default chunk of one
// placement block worth of rows.
func newChunkTask(op string, machine *numa.Machine, inputs []*BAT, lo, hi int, cyclesPerTuple uint64) *chunkTask {
	topo := machine.Topology()
	chunk := topo.BlockBytes / valueBytes
	if chunk < 1 {
		chunk = 1
	}
	t := &chunkTask{
		op:             op,
		inputs:         inputs,
		lo:             lo,
		hi:             hi,
		chunk:          chunk,
		cursor:         lo,
		cyclesPerTuple: cyclesPerTuple,
		pref:           numa.NoNode,
	}
	// Dispatch hint: the home of the first input's first block.
	for _, in := range inputs {
		if in == nil || in.Len() == 0 {
			continue
		}
		if n := in.HomeOfRow(machine.Memory(), topo.BlockBytes, lo); n != numa.NoNode {
			t.pref = n
			break
		}
	}
	return t
}

// Op implements Task.
func (t *chunkTask) Op() string { return t.op }

// PreferredNode implements Task.
func (t *chunkTask) PreferredNode() numa.NodeID { return t.pref }

// Step implements Task.
func (t *chunkTask) Step(ctx *sched.ExecContext, budget uint64) (uint64, bool) {
	var used uint64
	if t.debt > 0 {
		if t.debt >= budget {
			t.debt -= budget
			return budget, false
		}
		used = t.debt
		t.debt = 0
	}
	for used < budget && t.cursor < t.hi {
		n := t.chunk
		if rem := t.hi - t.cursor; n > rem {
			n = rem
		}
		cost := uint64(n) * t.cyclesPerTuple
		for _, in := range t.inputs {
			if in != nil && in.Len() > 0 {
				lo, hi := t.cursor, t.cursor+n
				if hi > in.Len() {
					hi = in.Len()
				}
				if lo < hi {
					cost += in.chargeRange(ctx, lo, hi, false)
				}
			}
		}
		if t.extraCharge != nil {
			cost += t.extraCharge(ctx, t.cursor, t.cursor+n)
		}
		if t.process != nil {
			t.process(t.cursor, t.cursor+n)
		}
		t.cursor += n
		used += cost
	}
	if t.cursor >= t.hi && !t.finished {
		t.finished = true
		if t.finish != nil {
			for _, out := range t.finish(ctx) {
				if out != nil && out.Len() > 0 {
					used += out.chargeRange(ctx, 0, out.Len(), true)
				}
			}
		}
		if t.onDone != nil {
			t.onDone()
		}
	}
	if used > budget {
		t.debt = used - budget
		used = budget
	}
	return used, t.finished && t.debt == 0
}

// partitionRanges splits n rows into at most parts contiguous ranges of
// near-equal size, each at least minRows (except possibly the only one).
func partitionRanges(n, parts, minRows int) [][2]int {
	if n <= 0 {
		return [][2]int{{0, 0}}
	}
	if parts < 1 {
		parts = 1
	}
	if minRows < 1 {
		minRows = 1
	}
	maxParts := n / minRows
	if maxParts < 1 {
		maxParts = 1
	}
	if parts > maxParts {
		parts = maxParts
	}
	out := make([][2]int, 0, parts)
	base := n / parts
	extra := n % parts
	lo := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
