package db

import (
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// alloc_test.go pins the zero-allocation execution hot path: steady-state
// operator task steps must not touch the Go heap, and the query buffer
// pool must actually recycle storage across queries.

// TestChunkTaskStepSteadyStateZeroAlloc steps a scan task through a warm
// machine and requires allocation-free progress: the bulk AccessRange
// charge, the arena-backed caches and the placement layer all run without
// heap traffic once warm.
func TestChunkTaskStepSteadyStateZeroAlloc(t *testing.T) {
	topo := numa.Opteron8387()
	machine := numa.NewMachine(topo)
	vals := make([]float64, 1<<22)
	col := NewF64("col", vals)
	col.ensureRegion(machine.Memory(), topo.BlockBytes)
	ctx := &sched.ExecContext{Machine: machine, Core: 0, PID: 1, TID: 1}

	matched := 0
	task := newChunkTask("scan", machine, []*BAT{col}, 0, len(vals), cyclesScan)
	task.process = func(a, b int) {
		for i := a; i < b; i++ {
			if vals[i] >= 0 {
				matched++
			}
		}
	}
	// Warm the caches, the placement table and the machine's cost memo.
	if _, done := task.Step(ctx, 1<<20); done {
		t.Fatal("task finished during warm-up; grow the input")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, done := task.Step(ctx, 1<<14); done {
			t.Fatal("task finished mid-measurement; grow the input")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state task step allocated %v times per run, want 0", allocs)
	}
}

// TestBufferPoolRecyclesBackingArrays checks the get/own/release cycle
// returns previously used storage instead of allocating anew.
func TestBufferPoolRecyclesBackingArrays(t *testing.T) {
	var p bufPool
	a := p.getI64(100)
	a = append(a, 1, 2, 3)
	p.putI64(a)
	b := p.getI64(64) // within the bucket's guaranteed minimum
	if cap(b) != cap(a) || &a[:1][0] != &b[:1][0] {
		t.Error("getI64 did not recycle the returned buffer")
	}
	if len(b) != 0 {
		t.Errorf("recycled buffer has len %d, want 0", len(b))
	}

	f := p.getF64(64)
	p.putF64(f)
	g := p.getF64(10)
	if cap(g) != cap(f) || &f[:1][0] != &g[:1][0] {
		t.Error("getF64 did not recycle the returned buffer")
	}

	m := p.getMapIF()
	m.Add(7, 1.5)
	p.putMapIF(m)
	m2 := p.getMapIF()
	if m2 != m {
		t.Error("getMapIF did not recycle the returned table")
	}
	if m2.Len() != 0 {
		t.Errorf("recycled table has %d stale entries", m2.Len())
	}
	if _, ok := m2.Get(7); ok {
		t.Error("recycled table still resolves a stale key")
	}
}

// TestPoolClassKeepsCapacityPromise: a buffer too small for a request must
// not be handed out even when its size class matches.
func TestPoolClassKeepsCapacityPromise(t *testing.T) {
	var p bufPool
	p.putI64(make([]int64, 0, 520)) // class 10 holds caps 512..1023
	got := p.getI64(900)            // same class, larger need
	if cap(got) < 900 {
		t.Fatalf("getI64(900) returned cap %d", cap(got))
	}
}

// TestReleaseReclaimsQueryBuffers runs a real query twice on one engine
// and verifies the second run draws its candidate lists from the pool
// rather than allocating fresh ones, while Drain leaves results readable.
func TestReleaseReclaimsQueryBuffers(t *testing.T) {
	machine := numa.NewMachine(numa.Opteron8387())
	sc := sched.New(machine, sched.Config{})
	store := NewStore(machine)
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = float64(i % 50)
	}
	if _, err := store.CreateTable("t", map[string]*BAT{"v": NewF64("v", vals)}); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(store, Config{Scheduler: sc, PID: 7, ParseCycles: -1})
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Name: "scan", Stages: []StageFn{
		ThetaSelect("t", "v", "c", Pred{F: func(v float64) bool { return v < 25 }}),
		Count("c", "n"),
	}}
	runOnce := func() *Query {
		q := eng.Submit(plan)
		if !sc.RunUntil(q.Done, machine.Topology().SecondsToCycles(10)) {
			t.Fatal("query did not finish")
		}
		return q
	}
	q1 := runOnce()
	want := q1.Scalar("n")
	if want == 0 {
		t.Fatal("query matched nothing; predicate broken")
	}
	if len(q1.owned.i64) == 0 {
		t.Fatal("query registered no pooled buffers")
	}
	// Drain must NOT recycle: results of drained queries stay readable.
	if drained := eng.Drain(); len(drained) != 1 || drained[0] != q1 {
		t.Fatal("Drain did not return the finished query")
	}
	if got := float64(q1.Var("c").Rows()); got != want {
		t.Fatalf("drained query result corrupted: %v rows, want %v", got, want)
	}
	q1.releaseTo(&eng.pool)
	pooled := 0
	for _, cl := range eng.pool.i64 {
		pooled += len(cl)
	}
	if pooled == 0 {
		t.Fatal("release returned no buffers to the pool")
	}
	q2 := runOnce()
	if got := q2.Scalar("n"); got != want {
		t.Fatalf("pooled rerun returned %v, want %v", got, want)
	}
	eng.Release(q2)
}
