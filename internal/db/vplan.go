package db

import "fmt"

// vplan.go makes operator composition data: a PlanSpec is an ordered
// list of OpSpecs naming tables, columns, variables and predicates, and
// Compile validates the whole composition against a Store's catalog —
// tables and columns exist, predicate types match column kinds,
// variables are defined before use with the right roles, and partition
// shapes stay aligned where operators index fragments pairwise — then
// lowers each step onto the stage builders of operators.go, returning an
// executable *Plan or an error. Compile never panics, whatever the spec:
// a spec it accepts is guaranteed not to trip the builders' internal
// alignment panics at run time. That guarantee is what lets workloads be
// generated (the heterogeneous query mixes of the htap experiments) and
// fuzzed (FuzzPlanBuild) instead of hand-written.

// OpKind identifies one vectorized operator in a PlanSpec.
type OpKind int

const (
	// OpScan filters a full base column into a candidate list
	// (ThetaSelect; PredAll gives ScanAll).
	OpScan OpKind = iota
	// OpRefine filters an existing candidate list against another column
	// (SubSelect).
	OpRefine
	// OpProject gathers base-column values at candidate positions
	// (Projection).
	OpProject
	// OpMap2 applies a binary float function over two aligned value
	// variables (MapF2).
	OpMap2
	// OpSum folds a float value variable into a scalar (SumF).
	OpSum
	// OpCount stores a variable's row count in a scalar (Count).
	OpCount
	// OpBuild hashes a key variable (with optional payloads) into a named
	// set (BuildMap).
	OpBuild
	// OpProbeSemi keeps candidates whose column value hits the set
	// (ProbeSemi).
	OpProbeSemi
	// OpProbeFetch additionally gathers the build side's payloads
	// (ProbeFetch).
	OpProbeFetch
	// OpProbeAnti keeps candidates whose column value misses the set
	// (ProbeAnti).
	OpProbeAnti
	// OpGroupSum accumulates per-partition key→sum partials (GroupSum).
	OpGroupSum
	// OpGroupMerge merges partials into sorted key/sum variables
	// (GroupMerge).
	OpGroupMerge
	// OpGroupFilter drops merged groups failing a predicate (GroupFilter).
	OpGroupFilter
	// OpTopN keeps the n largest groups (TopN).
	OpTopN
	// OpLookup binary-searches a sorted key column and projects one value
	// into a scalar (PointLookup).
	OpLookup
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpRefine:
		return "refine"
	case OpProject:
		return "project"
	case OpMap2:
		return "map2"
	case OpSum:
		return "sum"
	case OpCount:
		return "count"
	case OpBuild:
		return "build"
	case OpProbeSemi:
		return "probe-semi"
	case OpProbeFetch:
		return "probe-fetch"
	case OpProbeAnti:
		return "probe-anti"
	case OpGroupSum:
		return "group-sum"
	case OpGroupMerge:
		return "group-merge"
	case OpGroupFilter:
		return "group-filter"
	case OpTopN:
		return "topn"
	case OpLookup:
		return "lookup"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// OpSpec is one step of a declarative plan. Which fields matter depends
// on Kind; Compile rejects incomplete or ill-typed steps.
type OpSpec struct {
	Kind OpKind
	// Table and Col name the base column of scans, refinements,
	// projections, probes and lookups; Col2 names the lookup's value
	// column.
	Table, Col, Col2 string
	// In and In2 name consumed variables (candidate lists, value vectors,
	// sets or partials, per Kind); Out and Out2 name the products
	// (variables, scalars, sets or partials, per Kind).
	In, In2, Out, Out2 string
	// Pred is the filter of OpScan and OpRefine.
	Pred Pred
	// Map is OpMap2's row function.
	Map func(x, y float64) float64
	// Keep is OpGroupFilter's HAVING predicate over group sums.
	Keep func(sum float64) bool
	// N is OpTopN's group budget.
	N int
	// Key is OpLookup's probe key.
	Key int64
}

// PlanSpec is a declarative operator pipeline.
type PlanSpec struct {
	Name string
	Ops  []OpSpec
}

// specVarRole classifies what a defined name holds during validation.
type specVarRole int

const (
	roleCand specVarRole = iota // candidate list (row OIDs)
	roleVals                    // value fragments of some Kind
)

// specVar is the compile-time state of one defined variable.
type specVar struct {
	role specVarRole
	kind Kind // value kind when role == roleVals
	// table is the base table a candidate list's OIDs index into:
	// refinements, projections and probes must stay on that table.
	table string
	// shape groups variables with identical partition structure (and,
	// per partition, identical row counts): operators that index two
	// variables' fragments pairwise require equal shapes.
	shape int
}

// Compile validates the spec against the store's catalog and lowers it
// onto the engine's stage builders. It returns an error — never panics —
// on unknown tables or columns, type mismatches, use of undefined
// variables and misaligned compositions.
func (s PlanSpec) Compile(st *Store) (*Plan, error) {
	vars := map[string]specVar{}
	sets := map[string]bool{}
	partials := map[string]bool{}
	nextShape := 0
	freshShape := func() int { nextShape++; return nextShape }

	fail := func(i int, op OpSpec, format string, args ...any) (*Plan, error) {
		return nil, fmt.Errorf("db: plan %q op %d (%s): %s",
			s.Name, i, op.Kind, fmt.Sprintf(format, args...))
	}
	column := func(table, col string) (*BAT, error) {
		if !st.HasTable(table) {
			return nil, fmt.Errorf("unknown table %q", table)
		}
		t := st.Table(table)
		if !t.HasCol(col) {
			return nil, fmt.Errorf("table %q has no column %q", table, col)
		}
		return t.Col(col), nil
	}
	predMatches := func(p Pred, c *BAT) error {
		if c.Kind == KindI64 && p.I == nil {
			return fmt.Errorf("integer column %q needs an integer predicate", c.Name)
		}
		if c.Kind == KindF64 && p.F == nil {
			return fmt.Errorf("float column %q needs a float predicate", c.Name)
		}
		return nil
	}
	candidate := func(name, table string) (specVar, error) {
		v, ok := vars[name]
		if !ok {
			return specVar{}, fmt.Errorf("undefined variable %q", name)
		}
		if v.role != roleCand {
			return specVar{}, fmt.Errorf("variable %q is not a candidate list", name)
		}
		if v.table != table {
			return specVar{}, fmt.Errorf("candidate list %q indexes table %q, not %q", name, v.table, table)
		}
		return v, nil
	}
	values := func(name string, want Kind) (specVar, error) {
		v, ok := vars[name]
		if !ok {
			return specVar{}, fmt.Errorf("undefined variable %q", name)
		}
		if v.role != roleVals {
			return specVar{}, fmt.Errorf("variable %q is not a value vector", name)
		}
		if v.kind != want {
			return specVar{}, fmt.Errorf("variable %q has the wrong value kind", name)
		}
		return v, nil
	}

	stages := make([]StageFn, 0, len(s.Ops))
	for i, op := range s.Ops {
		switch op.Kind {
		case OpScan:
			c, err := column(op.Table, op.Col)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if err := predMatches(op.Pred, c); err != nil {
				return fail(i, op, "%v", err)
			}
			if op.Out == "" {
				return fail(i, op, "missing output variable")
			}
			vars[op.Out] = specVar{role: roleCand, table: op.Table, shape: freshShape()}
			stages = append(stages, ThetaSelect(op.Table, op.Col, op.Out, op.Pred))

		case OpRefine:
			if _, err := candidate(op.In, op.Table); err != nil {
				return fail(i, op, "%v", err)
			}
			c, err := column(op.Table, op.Col)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if err := predMatches(op.Pred, c); err != nil {
				return fail(i, op, "%v", err)
			}
			if op.Out == "" {
				return fail(i, op, "missing output variable")
			}
			// Refinement drops rows per fragment: the partition count
			// survives but row alignment with the input's shape does not,
			// so the output starts a fresh shape group.
			vars[op.Out] = specVar{role: roleCand, table: op.Table, shape: freshShape()}
			stages = append(stages, SubSelect(op.In, op.Table, op.Col, op.Out, op.Pred))

		case OpProject:
			in, err := candidate(op.In, op.Table)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			c, err := column(op.Table, op.Col)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if op.Out == "" {
				return fail(i, op, "missing output variable")
			}
			vars[op.Out] = specVar{role: roleVals, kind: c.Kind, shape: in.shape}
			stages = append(stages, Projection(op.In, op.Table, op.Col, op.Out))

		case OpMap2:
			a, err := values(op.In, KindF64)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			b, err := values(op.In2, KindF64)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if a.shape != b.shape {
				return fail(i, op, "inputs %q and %q are not aligned", op.In, op.In2)
			}
			if op.Map == nil {
				return fail(i, op, "missing map function")
			}
			if op.Out == "" {
				return fail(i, op, "missing output variable")
			}
			vars[op.Out] = specVar{role: roleVals, kind: KindF64, shape: a.shape}
			stages = append(stages, MapF2(op.In, op.In2, op.Out, op.Map))

		case OpSum:
			if _, err := values(op.In, KindF64); err != nil {
				return fail(i, op, "%v", err)
			}
			if op.Out == "" {
				return fail(i, op, "missing output scalar")
			}
			stages = append(stages, SumF(op.In, op.Out))

		case OpCount:
			if _, ok := vars[op.In]; !ok {
				return fail(i, op, "undefined variable %q", op.In)
			}
			if op.Out == "" {
				return fail(i, op, "missing output scalar")
			}
			stages = append(stages, Count(op.In, op.Out))

		case OpBuild:
			keys, err := values(op.In, KindI64)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if op.In2 != "" {
				vals, ok := vars[op.In2]
				if !ok || vals.role != roleVals {
					return fail(i, op, "payload %q is not a value vector", op.In2)
				}
				if vals.shape != keys.shape {
					return fail(i, op, "keys %q and payloads %q are not aligned", op.In, op.In2)
				}
			}
			if op.Out == "" {
				return fail(i, op, "missing output set")
			}
			sets[op.Out] = true
			stages = append(stages, BuildMap(op.In, op.In2, op.Out))

		case OpProbeSemi, OpProbeFetch, OpProbeAnti:
			if _, err := candidate(op.In, op.Table); err != nil {
				return fail(i, op, "%v", err)
			}
			c, err := column(op.Table, op.Col)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if c.Kind != KindI64 {
				return fail(i, op, "probe column %q must be integer", op.Col)
			}
			if !sets[op.In2] {
				return fail(i, op, "undefined set %q", op.In2)
			}
			if op.Out == "" {
				return fail(i, op, "missing output variable")
			}
			shape := freshShape()
			vars[op.Out] = specVar{role: roleCand, table: op.Table, shape: shape}
			switch op.Kind {
			case OpProbeSemi:
				stages = append(stages, ProbeSemi(op.In, op.Table, op.Col, op.In2, op.Out))
			case OpProbeAnti:
				stages = append(stages, ProbeAnti(op.In, op.Table, op.Col, op.In2, op.Out))
			default:
				if op.Out2 == "" {
					return fail(i, op, "missing payload output variable")
				}
				vars[op.Out2] = specVar{role: roleVals, kind: KindI64, shape: shape}
				stages = append(stages, ProbeFetch(op.In, op.Table, op.Col, op.In2, op.Out, op.Out2))
			}

		case OpGroupSum:
			keys, err := values(op.In, KindI64)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if op.In2 != "" {
				vals, ok := vars[op.In2]
				if !ok || vals.role != roleVals {
					return fail(i, op, "values %q is not a value vector", op.In2)
				}
				if vals.shape != keys.shape {
					return fail(i, op, "keys %q and values %q are not aligned", op.In, op.In2)
				}
			}
			if op.Out == "" {
				return fail(i, op, "missing output partials")
			}
			partials[op.Out] = true
			stages = append(stages, GroupSum(op.In, op.In2, op.Out))

		case OpGroupMerge:
			if !partials[op.In] {
				return fail(i, op, "undefined partials %q", op.In)
			}
			if op.Out == "" || op.Out2 == "" {
				return fail(i, op, "missing output variables")
			}
			if op.Out == op.Out2 {
				return fail(i, op, "key and sum outputs must differ")
			}
			shape := freshShape()
			vars[op.Out] = specVar{role: roleVals, kind: KindI64, shape: shape}
			vars[op.Out2] = specVar{role: roleVals, kind: KindF64, shape: shape}
			stages = append(stages, GroupMerge(op.In, op.Out, op.Out2))

		case OpGroupFilter:
			keys, err := values(op.In, KindI64)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			sums, err := values(op.In2, KindF64)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if keys.shape != sums.shape {
				return fail(i, op, "keys %q and sums %q are not aligned", op.In, op.In2)
			}
			if op.Keep == nil {
				return fail(i, op, "missing keep predicate")
			}
			shape := freshShape()
			vars[op.In] = specVar{role: roleVals, kind: KindI64, shape: shape}
			vars[op.In2] = specVar{role: roleVals, kind: KindF64, shape: shape}
			stages = append(stages, GroupFilter(op.In, op.In2, op.Keep))

		case OpTopN:
			keys, err := values(op.In, KindI64)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			sums, err := values(op.In2, KindF64)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if keys.shape != sums.shape {
				return fail(i, op, "keys %q and sums %q are not aligned", op.In, op.In2)
			}
			if op.N < 0 {
				return fail(i, op, "negative group budget %d", op.N)
			}
			shape := freshShape()
			vars[op.In] = specVar{role: roleVals, kind: KindI64, shape: shape}
			vars[op.In2] = specVar{role: roleVals, kind: KindF64, shape: shape}
			stages = append(stages, TopN(op.In, op.In2, op.N))

		case OpLookup:
			kc, err := column(op.Table, op.Col)
			if err != nil {
				return fail(i, op, "%v", err)
			}
			if kc.Kind != KindI64 {
				return fail(i, op, "lookup key column %q must be integer", op.Col)
			}
			if _, err := column(op.Table, op.Col2); err != nil {
				return fail(i, op, "%v", err)
			}
			if op.Out == "" {
				return fail(i, op, "missing output scalar")
			}
			stages = append(stages, PointLookup(op.Table, op.Col, op.Col2, op.Key, op.Out))

		default:
			return fail(i, op, "unknown operator kind")
		}
	}
	return &Plan{Name: s.Name, Stages: stages}, nil
}

// PlanBuilder is the fluent face of PlanSpec: chain operator calls, then
// Compile against a store. Errors surface at Compile, keeping the
// chaining free of per-call error plumbing.
type PlanBuilder struct{ spec PlanSpec }

// NewPlanSpec starts a named declarative plan.
func NewPlanSpec(name string) *PlanBuilder {
	return &PlanBuilder{spec: PlanSpec{Name: name}}
}

func (b *PlanBuilder) add(op OpSpec) *PlanBuilder {
	b.spec.Ops = append(b.spec.Ops, op)
	return b
}

// Scan filters a full base column into candidate list out.
func (b *PlanBuilder) Scan(table, col, out string, p Pred) *PlanBuilder {
	return b.add(OpSpec{Kind: OpScan, Table: table, Col: col, Out: out, Pred: p})
}

// ScanAll produces a candidate list covering the whole table.
func (b *PlanBuilder) ScanAll(table, col, out string) *PlanBuilder {
	return b.Scan(table, col, out, PredAll())
}

// Refine filters candidate list in against another column into out.
func (b *PlanBuilder) Refine(in, table, col, out string, p Pred) *PlanBuilder {
	return b.add(OpSpec{Kind: OpRefine, In: in, Table: table, Col: col, Out: out, Pred: p})
}

// Project gathers column values at the candidates of in into out.
func (b *PlanBuilder) Project(in, table, col, out string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpProject, In: in, Table: table, Col: col, Out: out})
}

// Map2 applies f over the aligned float variables a and b2 into out.
func (b *PlanBuilder) Map2(a, b2, out string, f func(x, y float64) float64) *PlanBuilder {
	return b.add(OpSpec{Kind: OpMap2, In: a, In2: b2, Out: out, Map: f})
}

// Sum folds float variable in into the named scalar.
func (b *PlanBuilder) Sum(in, scalar string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpSum, In: in, Out: scalar})
}

// Count stores in's row count in the named scalar.
func (b *PlanBuilder) Count(in, scalar string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpCount, In: in, Out: scalar})
}

// Build hashes key variable keys (payloads from vals, or 1 when vals is
// empty) into the named set.
func (b *PlanBuilder) Build(keys, vals, set string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpBuild, In: keys, In2: vals, Out: set})
}

// ProbeSemi keeps candidates of in whose column value hits the set.
func (b *PlanBuilder) ProbeSemi(in, table, col, set, out string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpProbeSemi, In: in, Table: table, Col: col, In2: set, Out: out})
}

// ProbeFetch keeps hitting candidates and gathers payloads into outVals.
func (b *PlanBuilder) ProbeFetch(in, table, col, set, out, outVals string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpProbeFetch, In: in, Table: table, Col: col, In2: set, Out: out, Out2: outVals})
}

// ProbeAnti keeps candidates of in whose column value misses the set.
func (b *PlanBuilder) ProbeAnti(in, table, col, set, out string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpProbeAnti, In: in, Table: table, Col: col, In2: set, Out: out})
}

// GroupSum accumulates per-partition key→sum(vals) partials (count mode
// when vals is empty).
func (b *PlanBuilder) GroupSum(keys, vals, partials string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpGroupSum, In: keys, In2: vals, Out: partials})
}

// GroupMerge merges partials into sorted outKeys/outSums variables.
func (b *PlanBuilder) GroupMerge(partials, outKeys, outSums string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpGroupMerge, In: partials, Out: outKeys, Out2: outSums})
}

// GroupFilter drops merged groups whose sum fails keep.
func (b *PlanBuilder) GroupFilter(keys, sums string, keep func(sum float64) bool) *PlanBuilder {
	return b.add(OpSpec{Kind: OpGroupFilter, In: keys, In2: sums, Keep: keep})
}

// TopN keeps the n largest groups of the keys/sums pair.
func (b *PlanBuilder) TopN(keys, sums string, n int) *PlanBuilder {
	return b.add(OpSpec{Kind: OpTopN, In: keys, In2: sums, N: n})
}

// Lookup binary-searches the sorted key column for key and projects
// valCol at the hit into the named scalar.
func (b *PlanBuilder) Lookup(table, keyCol, valCol string, key int64, outScalar string) *PlanBuilder {
	return b.add(OpSpec{Kind: OpLookup, Table: table, Col: keyCol, Col2: valCol, Key: key, Out: outScalar})
}

// Spec returns the accumulated declarative plan.
func (b *PlanBuilder) Spec() PlanSpec { return b.spec }

// Compile validates and lowers the accumulated plan (see
// PlanSpec.Compile).
func (b *PlanBuilder) Compile(st *Store) (*Plan, error) { return b.spec.Compile(st) }
