package db

import (
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// pool_test.go pins the safety and cost properties of the buffer pool
// itself: Release is idempotent (a finished query can never donate the
// same backing array twice), and warmed-up get/put round trips run
// allocation-free for every pooled type.

// poolRig builds a minimal engine with one scannable table and returns a
// runner that executes a small filter+count plan to completion.
func poolRig(t *testing.T) (*Engine, func() *Query) {
	t.Helper()
	machine := numa.NewMachine(numa.Opteron8387())
	sc := sched.New(machine, sched.Config{})
	store := NewStore(machine)
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = float64(i % 50)
	}
	if _, err := store.CreateTable("t", map[string]*BAT{"v": NewF64("v", vals)}); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(store, Config{Scheduler: sc, PID: 9, ParseCycles: -1})
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Name: "scan", Stages: []StageFn{
		ThetaSelect("t", "v", "c", Pred{F: func(v float64) bool { return v < 25 }}),
		Count("c", "n"),
	}}
	run := func() *Query {
		q := eng.Submit(plan)
		if !sc.RunUntil(q.Done, machine.Topology().SecondsToCycles(10)) {
			t.Fatal("query did not finish")
		}
		return q
	}
	return eng, run
}

// poolDepth counts every buffer currently parked in the pool.
func poolDepth(p *bufPool) int {
	n := len(p.mif) + len(p.mii) + len(p.disp)
	for _, cl := range p.i64 {
		n += len(cl)
	}
	for _, cl := range p.f64 {
		n += len(cl)
	}
	return n
}

// TestReleaseIsIdempotent: releasing the same query twice must donate its
// buffers exactly once. Without the guard, the duplicate donation would
// hand one backing array to two later queries simultaneously.
func TestReleaseIsIdempotent(t *testing.T) {
	eng, run := poolRig(t)
	q := run()
	if len(q.owned.i64) == 0 {
		t.Fatal("query registered no pooled buffers; rig broken")
	}
	eng.Release(q)
	after := poolDepth(&eng.pool)
	if after == 0 {
		t.Fatal("first Release returned nothing to the pool")
	}
	eng.Release(q)
	if got := poolDepth(&eng.pool); got != after {
		t.Fatalf("second Release changed pool depth %d -> %d; buffers double-donated", after, got)
	}
	if !q.released {
		t.Error("released flag not set")
	}
}

// TestReleaseIgnoresNilAndUnfinished: the guard also covers the trivially
// invalid calls — nil queries and queries still executing.
func TestReleaseIgnoresNilAndUnfinished(t *testing.T) {
	eng, _ := poolRig(t)
	eng.Release(nil) // must not panic
	q := eng.Submit(&Plan{Name: "noop", Stages: []StageFn{
		ThetaSelect("t", "v", "c", PredAll()),
	}})
	if q.Done() {
		t.Fatal("query finished synchronously; rig broken")
	}
	before := poolDepth(&eng.pool)
	eng.Release(q)
	if q.released {
		t.Error("unfinished query marked released")
	}
	if got := poolDepth(&eng.pool); got != before {
		t.Errorf("releasing an unfinished query moved %d buffers", got-before)
	}
	if eng.ActiveQueries() != 1 {
		t.Errorf("unfinished query dropped from tracking: %d running, want 1", eng.ActiveQueries())
	}
}

// TestPoolRoundTripsDoNotAllocate: once a size class is warm, the
// get/put hot path for every pooled type stays off the Go heap.
func TestPoolRoundTripsDoNotAllocate(t *testing.T) {
	var p bufPool
	// Warm one buffer per exercised class.
	p.putI64(make([]int64, 0, 256))
	p.putF64(make([]float64, 0, 256))
	p.putMapIF(&i64fMap{})
	p.putMapII(&i64Map{})
	p.putDispatched(&dispatched{})

	cases := []struct {
		name string
		fn   func()
	}{
		{"i64", func() { p.putI64(p.getI64(200)) }},
		{"f64", func() { p.putF64(p.getF64(200)) }},
		{"map-if", func() { p.putMapIF(p.getMapIF()) }},
		{"map-ii", func() { p.putMapII(p.getMapII()) }},
		{"dispatched", func() { p.putDispatched(p.getDispatched()) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s round trip allocated %v times per run, want 0", tc.name, allocs)
		}
	}
}

// TestPoolWarmQueryStreamDoesNotGrowHeap: after one warm-up query, a
// run/Release stream reuses pooled candidate lists — the pool depth
// returns to its resting level after every release instead of growing.
func TestPoolWarmQueryStreamDoesNotGrowHeap(t *testing.T) {
	eng, run := poolRig(t)
	eng.Release(run()) // warm the pool
	resting := poolDepth(&eng.pool)
	if resting == 0 {
		t.Fatal("warm-up query pooled nothing")
	}
	for i := 0; i < 5; i++ {
		q := run()
		eng.Release(q)
		if got := poolDepth(&eng.pool); got != resting {
			t.Fatalf("iteration %d: pool depth %d, want resting %d", i, got, resting)
		}
	}
}

// TestPoolClassCapBoundsRetention: a size class never retains more than
// poolClassCap buffers; the overflow is left to the collector.
func TestPoolClassCapBoundsRetention(t *testing.T) {
	var p bufPool
	for i := 0; i < poolClassCap+10; i++ {
		p.putI64(make([]int64, 0, 64))
	}
	if got := len(p.i64[class(64)]); got != poolClassCap {
		t.Errorf("class retained %d buffers, want cap %d", got, poolClassCap)
	}
	// Zero-capacity buffers are never filed.
	p.putF64(nil)
	p.putF64(make([]float64, 0))
	for c, cl := range p.f64 {
		if len(cl) != 0 {
			t.Errorf("zero-cap put filed a buffer in class %d", c)
		}
	}
}
