package db

import (
	"math"
	"testing"

	"elasticore/internal/numa"
	"elasticore/internal/sched"
)

// opRig builds a minimal store+engine over hand-written columns so each
// operator's semantics can be checked in isolation.
type opRig struct {
	machine *numa.Machine
	sched   *sched.Scheduler
	store   *Store
	eng     *Engine
}

func newOpRig(t *testing.T) *opRig {
	t.Helper()
	m := numa.NewMachine(numa.Opteron8387())
	sc := sched.New(m, sched.Config{})
	st := NewStore(m)
	if _, err := st.CreateTable("t", map[string]*BAT{
		"k": NewI64("k", []int64{0, 1, 2, 3, 4, 5, 6, 7}),
		"v": NewF64("v", []float64{1, 2, 3, 4, 5, 6, 7, 8}),
		"g": NewI64("g", []int64{0, 1, 0, 1, 0, 1, 0, 1}),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.CreateTable("dim", map[string]*BAT{
		"dk": NewI64("dk", []int64{1, 3, 5}),
		"dv": NewI64("dv", []int64{10, 30, 50}),
	}); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(st, Config{Scheduler: sc, PID: 9, MinPartRows: 2, Fanout: 3})
	if err != nil {
		t.Fatal(err)
	}
	return &opRig{machine: m, sched: sc, store: st, eng: eng}
}

func (r *opRig) exec(t *testing.T, stages ...StageFn) *Query {
	t.Helper()
	q := r.eng.Submit(&Plan{Name: "unit", Stages: stages})
	if !r.sched.RunUntil(q.Done, r.machine.Topology().SecondsToCycles(60)) {
		t.Fatal("plan did not finish")
	}
	return q
}

func TestOpThetaSelect(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t, ThetaSelect("t", "k", "out", PredIRange(2, 6)))
	got := q.Var("out").FlattenI64()
	want := []int64{2, 3, 4, 5}
	assertI64(t, got, want)
}

func TestOpSubSelectRefines(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ThetaSelect("t", "k", "c1", PredIRange(0, 8)),
		SubSelect("c1", "t", "g", "c2", PredIEq(1)),
	)
	assertI64(t, q.Var("c2").FlattenI64(), []int64{1, 3, 5, 7})
}

func TestOpProjectionGathers(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ThetaSelect("t", "k", "c1", PredIIn(1, 4, 6)),
		Projection("c1", "t", "v", "vals"),
	)
	got := q.Var("vals").FlattenF64()
	want := []float64{2, 5, 7}
	assertF64(t, got, want)
}

func TestOpMapF2(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ThetaSelect("t", "k", "c1", PredIRange(0, 3)),
		Projection("c1", "t", "v", "a"),
		Projection("c1", "t", "v", "b"),
		MapF2("a", "b", "prod", func(x, y float64) float64 { return x * y }),
	)
	assertF64(t, q.Var("prod").FlattenF64(), []float64{1, 4, 9})
}

func TestOpSumFAndCount(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ThetaSelect("t", "k", "c1", PredIRange(0, 8)),
		Projection("c1", "t", "v", "vals"),
		SumF("vals", "sum"),
		Count("c1", "n"),
	)
	if got := q.Scalar("sum"); math.Abs(got-36) > 1e-9 {
		t.Errorf("sum = %g, want 36", got)
	}
	if got := q.Scalar("n"); got != 8 {
		t.Errorf("count = %g, want 8", got)
	}
}

func TestOpBuildMapAndProbeSemi(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ScanAll("dim", "dk", "cd"),
		Projection("cd", "dim", "dk", "dkeys"),
		BuildMap("dkeys", "", "dset"),
		ScanAll("t", "k", "ct"),
		ProbeSemi("ct", "t", "k", "dset", "hits"),
	)
	assertI64(t, q.Var("hits").FlattenI64(), []int64{1, 3, 5})
}

func TestOpProbeAnti(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ScanAll("dim", "dk", "cd"),
		Projection("cd", "dim", "dk", "dkeys"),
		BuildMap("dkeys", "", "dset"),
		ScanAll("t", "k", "ct"),
		ProbeAnti("ct", "t", "k", "dset", "misses"),
	)
	assertI64(t, q.Var("misses").FlattenI64(), []int64{0, 2, 4, 6, 7})
}

func TestOpProbeFetchPayload(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ScanAll("dim", "dk", "cd"),
		Projection("cd", "dim", "dk", "dkeys"),
		Projection("cd", "dim", "dv", "dvals"),
		BuildMap("dkeys", "dvals", "d2v"),
		ScanAll("t", "k", "ct"),
		ProbeFetch("ct", "t", "k", "d2v", "hits", "payload"),
	)
	assertI64(t, q.Var("hits").FlattenI64(), []int64{1, 3, 5})
	assertI64(t, q.Var("payload").FlattenI64(), []int64{10, 30, 50})
}

func TestOpGroupSumMerge(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ScanAll("t", "k", "ct"),
		Projection("ct", "t", "g", "keys"),
		Projection("ct", "t", "v", "vals"),
		GroupSum("keys", "vals", "p"),
		GroupMerge("p", "gk", "gs"),
	)
	assertI64(t, q.Var("gk").FlattenI64(), []int64{0, 1})
	// group 0: v at even k = 1+3+5+7 = 16; group 1: 2+4+6+8 = 20.
	assertF64(t, q.Var("gs").FlattenF64(), []float64{16, 20})
}

func TestOpGroupSumCountMode(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ScanAll("t", "k", "ct"),
		Projection("ct", "t", "g", "keys"),
		GroupSum("keys", "", "p"),
		GroupMerge("p", "gk", "gs"),
	)
	assertF64(t, q.Var("gs").FlattenF64(), []float64{4, 4})
}

func TestOpGroupFilterAndTopN(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ScanAll("t", "k", "ct"),
		Projection("ct", "t", "k", "keys"),
		Projection("ct", "t", "v", "vals"),
		GroupSum("keys", "vals", "p"),
		GroupMerge("p", "gk", "gs"),
		GroupFilter("gk", "gs", func(s float64) bool { return s >= 4 }),
		TopN("gk", "gs", 3),
	)
	// Groups are singleton k->v; filter keeps v >= 4; top 3 descending.
	assertF64(t, q.Var("gs").FlattenF64(), []float64{8, 7, 6})
	assertI64(t, q.Var("gk").FlattenI64(), []int64{7, 6, 5})
}

func TestOpPredTypeMismatchPanics(t *testing.T) {
	r := newOpRig(t)
	defer func() {
		if recover() == nil {
			t.Error("float predicate on integer column did not panic")
		}
	}()
	// ThetaSelect plans lazily; execution triggers the panic inside the
	// scheduler tick, so call eval directly.
	p := Pred{F: func(float64) bool { return true }}
	p.eval(r.store.Table("t").Col("k"), 0)
}

func TestOpEmptyInputsPropagate(t *testing.T) {
	r := newOpRig(t)
	q := r.exec(t,
		ThetaSelect("t", "k", "c1", PredIEq(-1)), // empty selection
		SubSelect("c1", "t", "g", "c2", PredIEq(1)),
		Projection("c2", "t", "v", "vals"),
		SumF("vals", "sum"),
	)
	if q.Var("vals").Rows() != 0 {
		t.Error("empty candidates produced values")
	}
	if q.Scalar("sum") != 0 {
		t.Error("empty sum non-zero")
	}
}

func assertI64(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func assertF64(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
