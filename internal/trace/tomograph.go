package trace

import (
	"fmt"
	"sort"
	"strings"

	"elasticore/internal/db"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
)

// Tomograph aggregates per-operator task executions like MonetDB's
// tomograph facility (paper Figure 6): how many calls each operator made,
// their total time, and which workers ran them.
type Tomograph struct {
	topo   *numa.Topology
	events []db.TaskEvent
}

// NewTomograph subscribes to the engine's task-completion stream via its
// telemetry bus (attaching one if needed). Unlike the deprecated
// OnTaskDone hook it replaces, any number of consumers coexist.
func NewTomograph(e *db.Engine, topo *numa.Topology) *Tomograph {
	return NewTomographOn(e.EnsureBus(), topo)
}

// NewTomographOn subscribes a tomograph to an existing bus — the form
// used when several consumers share one rig-wide stream.
func NewTomographOn(b *obs.Bus, topo *numa.Topology) *Tomograph {
	t := &Tomograph{topo: topo}
	b.Subscribe(obs.KindTaskDone, func(e obs.Event) {
		t.events = append(t.events, db.TaskEvent{
			Worker: sched.TID(e.TID),
			Op:     e.Label,
			Start:  e.Start,
			End:    e.Start + e.Dur,
		})
	})
	return t
}

// OpStat summarizes one operator.
type OpStat struct {
	Op      string
	Calls   int
	Seconds float64
	Workers int
}

// Stats returns the per-operator summary sorted by descending total time.
func (t *Tomograph) Stats() []OpStat {
	type agg struct {
		calls   int
		cycles  uint64
		workers map[int]bool
	}
	byOp := map[string]*agg{}
	for _, e := range t.events {
		a := byOp[e.Op]
		if a == nil {
			a = &agg{workers: map[int]bool{}}
			byOp[e.Op] = a
		}
		a.calls++
		a.cycles += e.End - e.Start
		a.workers[int(e.Worker)] = true
	}
	out := make([]OpStat, 0, len(byOp))
	for op, a := range byOp {
		out = append(out, OpStat{
			Op:      op,
			Calls:   a.calls,
			Seconds: t.topo.CyclesToSeconds(a.cycles),
			Workers: len(a.workers),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// Events returns the raw task events.
func (t *Tomograph) Events() []db.TaskEvent { return t.events }

// Render prints the operator table in Figure 6's caption style
// ("algebra.subselect — 32 calls: 1.435 s").
func (t *Tomograph) Render() string {
	var b strings.Builder
	for _, s := range t.Stats() {
		fmt.Fprintf(&b, "%-26s %4d calls: %8.3f ms on %2d workers\n",
			s.Op, s.Calls, s.Seconds*1e3, s.Workers)
	}
	if b.Len() == 0 {
		return "(no task events recorded)\n"
	}
	return b.String()
}
