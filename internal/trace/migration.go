// Package trace records and renders thread-scheduling traces: the
// lifespan/core-migration maps of the paper's Figures 5 and 16, and the
// per-operator tomograph of Figure 6.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
)

// MigrationTrace accumulates scheduling events for a set of threads.
// Attach it to a scheduler before running the workload of interest.
type MigrationTrace struct {
	topo   *numa.Topology
	events []sched.MigrationEvent
	slices []sched.RunSlice
}

// NewMigrationTrace subscribes a trace to the scheduler's telemetry bus
// (attaching one if needed). Unlike the deprecated OnMigrate/OnRunSlice
// hooks it replaces, any number of traces and other consumers coexist on
// the one stream.
func NewMigrationTrace(s *sched.Scheduler) *MigrationTrace {
	return NewMigrationTraceOn(s.EnsureBus(), s.Machine().Topology())
}

// NewMigrationTraceOn subscribes a trace to an existing bus — the form
// used when several consumers share one rig-wide stream.
func NewMigrationTraceOn(b *obs.Bus, topo *numa.Topology) *MigrationTrace {
	t := &MigrationTrace{topo: topo}
	b.Subscribe(obs.KindMigration, func(e obs.Event) {
		t.events = append(t.events, sched.MigrationEvent{
			TID:  sched.TID(e.TID),
			From: numa.CoreID(e.From),
			To:   numa.CoreID(e.Core),
			Now:  e.Now,
		})
	})
	b.Subscribe(obs.KindRunSlice, func(e obs.Event) {
		t.slices = append(t.slices, sched.RunSlice{
			TID:    sched.TID(e.TID),
			Core:   numa.CoreID(e.Core),
			Start:  e.Start,
			Cycles: e.Dur,
		})
	})
	return t
}

// Migrations returns the raw migration events.
func (t *MigrationTrace) Migrations() []sched.MigrationEvent { return t.events }

// MigrationCount returns total and cross-node migration counts for the
// recorded window.
func (t *MigrationTrace) MigrationCount() (total, crossNode int) {
	for _, e := range t.events {
		total++
		if t.topo.NodeOf(e.From) != t.topo.NodeOf(e.To) {
			crossNode++
		}
	}
	return total, crossNode
}

// CoresUsed returns the distinct cores each thread executed on.
func (t *MigrationTrace) CoresUsed() map[sched.TID][]numa.CoreID {
	seen := make(map[sched.TID]map[numa.CoreID]bool)
	for _, s := range t.slices {
		if seen[s.TID] == nil {
			seen[s.TID] = make(map[numa.CoreID]bool)
		}
		seen[s.TID][s.Core] = true
	}
	out := make(map[sched.TID][]numa.CoreID, len(seen))
	for tid, cores := range seen {
		var cs []numa.CoreID
		for c := range cores {
			cs = append(cs, c)
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		out[tid] = cs
	}
	return out
}

// NodesUsed returns the distinct NUMA nodes each thread executed on.
func (t *MigrationTrace) NodesUsed() map[sched.TID]int {
	out := make(map[sched.TID]int)
	for tid, cores := range t.CoresUsed() {
		nodes := make(map[numa.NodeID]bool)
		for _, c := range cores {
			nodes[t.topo.NodeOf(c)] = true
		}
		out[tid] = len(nodes)
	}
	return out
}

// Render draws an ASCII lifespan map in the spirit of Figures 5/16: one
// row per time bucket, one column per thread, cells showing the core that
// ran the thread in that bucket ('.' = idle). Threads are limited to the
// first maxThreads by TID.
func (t *MigrationTrace) Render(buckets, maxThreads int) string {
	if len(t.slices) == 0 {
		return "(no run slices recorded)\n"
	}
	var minT, maxT uint64
	tids := map[sched.TID]bool{}
	for i, s := range t.slices {
		if i == 0 || s.Start < minT {
			minT = s.Start
		}
		if end := s.Start + s.Cycles; end > maxT {
			maxT = end
		}
		tids[s.TID] = true
	}
	ids := make([]sched.TID, 0, len(tids))
	for id := range tids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) > maxThreads {
		ids = ids[:maxThreads]
	}
	col := make(map[sched.TID]int, len(ids))
	for i, id := range ids {
		col[id] = i
	}
	span := maxT - minT
	if span == 0 {
		span = 1
	}
	grid := make([][]int, buckets)
	for i := range grid {
		grid[i] = make([]int, len(ids))
		for j := range grid[i] {
			grid[i][j] = -1
		}
	}
	for _, s := range t.slices {
		c, ok := col[s.TID]
		if !ok {
			continue
		}
		b := int(uint64(buckets) * (s.Start - minT) / span)
		if b >= buckets {
			b = buckets - 1
		}
		grid[b][c] = int(s.Core)
	}
	var b strings.Builder
	b.WriteString("time ")
	for _, id := range ids {
		fmt.Fprintf(&b, " T%-3d", id)
	}
	b.WriteByte('\n')
	for i, row := range grid {
		fmt.Fprintf(&b, "%4d ", i)
		for _, core := range row {
			if core < 0 {
				b.WriteString("   . ")
			} else {
				fmt.Fprintf(&b, " %3d ", core)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
