package trace

import (
	"strings"
	"testing"

	"elasticore/internal/db"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
	"elasticore/internal/tpch"
)

func tracedRig(t *testing.T) (*sched.Scheduler, *db.Engine, *numa.Machine) {
	t.Helper()
	m := numa.NewMachine(numa.Opteron8387())
	sc := sched.New(m, sched.Config{Quantum: m.Topology().SecondsToCycles(100e-6)})
	store := db.NewStore(m)
	if _, err := tpch.Load(store, tpch.Config{SF: 0.002}); err != nil {
		t.Fatal(err)
	}
	eng, err := db.NewEngine(store, db.Config{Scheduler: sc, PID: 100})
	if err != nil {
		t.Fatal(err)
	}
	return sc, eng, m
}

func TestMigrationTraceRecordsSlices(t *testing.T) {
	sc, eng, m := tracedRig(t)
	tr := NewMigrationTrace(sc)
	q := eng.Submit(tpch.BuildQ6(1))
	if !sc.RunUntil(q.Done, m.Topology().SecondsToCycles(300)) {
		t.Fatal("query did not finish")
	}
	if len(tr.slices) == 0 {
		t.Fatal("no run slices recorded")
	}
	cores := tr.CoresUsed()
	if len(cores) == 0 {
		t.Fatal("no threads observed")
	}
	nodes := tr.NodesUsed()
	for tid, n := range nodes {
		if n < 1 {
			t.Errorf("thread %d used %d nodes", tid, n)
		}
	}
}

func TestMigrationCountConsistent(t *testing.T) {
	sc, eng, m := tracedRig(t)
	tr := NewMigrationTrace(sc)
	// Heavy concurrency provokes stealing and migration.
	var qs []*db.Query
	for i := 0; i < 16; i++ {
		qs = append(qs, eng.Submit(tpch.BuildQ6(uint64(i))))
	}
	done := func() bool {
		for _, q := range qs {
			if !q.Done() {
				return false
			}
		}
		return true
	}
	if !sc.RunUntil(done, m.Topology().SecondsToCycles(600)) {
		t.Fatal("queries did not finish")
	}
	total, cross := tr.MigrationCount()
	if cross > total {
		t.Errorf("cross-node %d exceeds total %d", cross, total)
	}
	if total != len(tr.Migrations()) {
		t.Errorf("count %d != events %d", total, len(tr.Migrations()))
	}
}

func TestRenderProducesGrid(t *testing.T) {
	sc, eng, m := tracedRig(t)
	tr := NewMigrationTrace(sc)
	q := eng.Submit(tpch.BuildQ6(1))
	sc.RunUntil(q.Done, m.Topology().SecondsToCycles(300))
	out := tr.Render(10, 8)
	if !strings.Contains(out, "time") {
		t.Errorf("render missing header: %q", out[:40])
	}
	if len(strings.Split(out, "\n")) < 11 {
		t.Error("render has fewer rows than buckets")
	}
	empty := (&MigrationTrace{topo: m.Topology()}).Render(5, 5)
	if !strings.Contains(empty, "no run slices") {
		t.Error("empty trace should say so")
	}
}

func TestTomographCollectsOperators(t *testing.T) {
	sc, eng, m := tracedRig(t)
	tg := NewTomograph(eng, m.Topology())
	q := eng.Submit(tpch.BuildQ6(1))
	if !sc.RunUntil(q.Done, m.Topology().SecondsToCycles(300)) {
		t.Fatal("query did not finish")
	}
	stats := tg.Stats()
	if len(stats) == 0 {
		t.Fatal("no operator stats")
	}
	found := map[string]bool{}
	for _, s := range stats {
		found[s.Op] = true
		if s.Calls <= 0 {
			t.Errorf("%s has %d calls", s.Op, s.Calls)
		}
	}
	// Q6's plan must surface its MAL operators (Figure 6).
	for _, op := range []string{"algebra.thetasubselect", "algebra.subselect", "aggr.sum"} {
		if !found[op] {
			t.Errorf("operator %s missing from tomograph", op)
		}
	}
	out := tg.Render()
	if !strings.Contains(out, "algebra.thetasubselect") {
		t.Error("render missing operator line")
	}
}

func TestTomographParallelism(t *testing.T) {
	// The thetasubselect fans out across workers — the parallel access to
	// disjoint partitions the paper shows in Figure 6.
	sc, eng, m := tracedRig(t)
	tg := NewTomograph(eng, m.Topology())
	q := eng.Submit(tpch.BuildQ6(1))
	sc.RunUntil(q.Done, m.Topology().SecondsToCycles(300))
	for _, s := range tg.Stats() {
		if s.Op == "algebra.thetasubselect" && s.Calls < 2 {
			t.Errorf("thetasubselect ran %d tasks, want parallel fan-out", s.Calls)
		}
	}
}

// TestTraceConsumersCoexist: before the bus, each trace constructor
// replaced the scheduler's single hook, so attaching a second consumer
// silently disconnected the first. All consumers now subscribe to the
// shared bus and see the same stream; the raw hooks are gone.
func TestTraceConsumersCoexist(t *testing.T) {
	sc, eng, m := tracedRig(t)
	trA := NewMigrationTrace(sc)
	trB := NewMigrationTrace(sc) // would have clobbered trA pre-bus
	tg := NewTomograph(eng, m.Topology())
	rawSlices := 0
	sc.EnsureBus().Subscribe(obs.KindRunSlice, func(obs.Event) { rawSlices++ })

	q := eng.Submit(tpch.BuildQ6(1))
	if !sc.RunUntil(q.Done, m.Topology().SecondsToCycles(300)) {
		t.Fatal("query did not finish")
	}

	if len(trA.slices) == 0 {
		t.Fatal("first trace saw no slices after a second attached")
	}
	if len(trA.slices) != len(trB.slices) {
		t.Fatalf("traces diverged: %d vs %d slices", len(trA.slices), len(trB.slices))
	}
	if rawSlices != len(trA.slices) {
		t.Fatalf("raw bus subscriber saw %d slices, trace consumers %d", rawSlices, len(trA.slices))
	}
	if len(tg.Stats()) == 0 {
		t.Fatal("tomograph saw no tasks while migration traces attached")
	}
}
