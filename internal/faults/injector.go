package faults

import "elasticore/internal/hashmix"

// injector.go compiles a Plan against one fleet shape and clock into
// integer-cycle windows, then tracks which faults are live as the fleet
// clock advances. All state transitions happen inside Advance, in a
// deterministic order; the point queries between two Advance calls are
// pure reads.

// transition is one compiled window edge.
type transition struct {
	at    uint64 // fleet cycle
	index int    // plan fault index
	start bool
}

// Change reports one fault window edge applied by Advance.
type Change struct {
	// Index is the fault's position in the plan.
	Index int
	// Start is true when the window opened, false when it closed.
	Start bool
	// At is the compiled trigger cycle.
	At uint64
}

// Injector is a compiled Plan tracking live fault state.
type Injector struct {
	plan     *Plan
	machines int
	cores    int

	transitions []transition
	next        int
	active      []bool // per plan fault

	down      []bool     // per machine: any live crash
	factor    [][]uint64 // per machine, per core: combined slowdown (1 = none)
	linkDelay []uint64   // per machine: summed live link delay, cycles
	linkDrop  []float64  // per machine: max live drop probability
	delayC    []uint64   // per fault: compiled link delay
	changeBuf []Change   // reusable Advance result buffer
}

// Compile freezes the plan against a fleet shape. secondsToCycles is
// the fleet clock's conversion (topology-dependent); it must be
// monotone. The plan must already Validate against (machines, cores).
func (p *Plan) Compile(machines, cores int, secondsToCycles func(float64) uint64) *Injector {
	in := &Injector{
		plan:      p,
		machines:  machines,
		cores:     cores,
		active:    make([]bool, len(p.Faults)),
		down:      make([]bool, machines),
		factor:    make([][]uint64, machines),
		linkDelay: make([]uint64, machines),
		linkDrop:  make([]float64, machines),
		delayC:    make([]uint64, len(p.Faults)),
	}
	for m := range in.factor {
		in.factor[m] = make([]uint64, cores)
		for c := range in.factor[m] {
			in.factor[m][c] = 1
		}
	}
	for i, f := range p.Faults {
		start := secondsToCycles(f.At)
		in.transitions = append(in.transitions, transition{at: start, index: i, start: true})
		if f.For > 0 {
			in.transitions = append(in.transitions, transition{at: secondsToCycles(f.At + f.For), index: i, start: false})
		}
		if f.Kind == Link {
			in.delayC[i] = secondsToCycles(f.Delay)
		}
	}
	sortTransitions(in.transitions)
	return in
}

// Advance applies every window edge due at or before now and returns
// them in application order. The returned slice is valid until the
// next call.
func (in *Injector) Advance(now uint64) []Change {
	if in == nil || in.next >= len(in.transitions) || in.transitions[in.next].at > now {
		return nil
	}
	changes := in.changeBuf[:0]
	for in.next < len(in.transitions) && in.transitions[in.next].at <= now {
		tr := in.transitions[in.next]
		in.next++
		if in.active[tr.index] == tr.start {
			continue // duplicate edge (permanent fault re-armed); impossible today
		}
		in.active[tr.index] = tr.start
		in.recompute(in.plan.Faults[tr.index].Machine)
		changes = append(changes, Change{Index: tr.index, Start: tr.start, At: tr.at})
	}
	in.changeBuf = changes
	return changes
}

// recompute rebuilds machine m's live state from the active fault set.
// Plans are tiny, so a full rebuild per edge is cheaper than
// maintaining incremental per-kind counts.
func (in *Injector) recompute(m int) {
	in.down[m] = false
	for c := range in.factor[m] {
		in.factor[m][c] = 1
	}
	in.linkDelay[m] = 0
	in.linkDrop[m] = 0
	for i, f := range in.plan.Faults {
		if !in.active[i] || f.Machine != m {
			continue
		}
		switch f.Kind {
		case Crash:
			in.down[m] = true
		case Stall, Slow:
			factor := StallFactor
			if f.Kind == Slow {
				factor = f.Factor
			}
			lo, hi := f.Core, f.CoreHi
			if lo < 0 {
				lo, hi = 0, in.cores-1
			}
			if hi >= in.cores {
				hi = in.cores - 1
			}
			for c := lo; c <= hi; c++ {
				if factor > in.factor[m][c] {
					in.factor[m][c] = factor
				}
			}
		case Link:
			in.linkDelay[m] += in.delayC[i]
			if f.Drop > in.linkDrop[m] {
				in.linkDrop[m] = f.Drop
			}
		}
	}
}

// Done reports whether every window edge has been applied.
func (in *Injector) Done() bool { return in == nil || in.next >= len(in.transitions) }

// NextEdge returns the cycle of the next un-applied window edge, or
// ^uint64(0) when every edge has been applied. The parallel fleet engine
// caps decoupled stretches at it so Advance applies each edge on exactly
// the quantum a sequential run would have.
func (in *Injector) NextEdge() uint64 {
	if in.Done() {
		return ^uint64(0)
	}
	return in.transitions[in.next].at
}

// Down reports whether machine m is currently crashed.
func (in *Injector) Down(m int) bool { return in != nil && in.down[m] }

// CoreFactor returns core (m, c)'s combined slowdown factor: 1 when
// healthy, StallFactor when frozen.
func (in *Injector) CoreFactor(m, c int) uint64 {
	if in == nil {
		return 1
	}
	return in.factor[m][c]
}

// LinkDelay returns the added routing latency to machine m in cycles.
func (in *Injector) LinkDelay(m int) uint64 {
	if in == nil {
		return 0
	}
	return in.linkDelay[m]
}

// LinkDrop returns the live drop probability toward machine m.
func (in *Injector) LinkDrop(m int) float64 {
	if in == nil {
		return 0
	}
	return in.linkDrop[m]
}

// DropRoll decides deterministically whether roll n toward machine m
// is dropped under the live drop probability. Callers must supply
// distinct roll numbers (e.g. a request id) — the decision depends
// only on (plan seed, machine, n), never on call order.
func (in *Injector) DropRoll(m int, n uint64) bool {
	if in == nil {
		return false
	}
	p := in.linkDrop[m]
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := hashmix.Mix64(in.plan.Seed ^ hashmix.Golden*uint64(m+1) ^ hashmix.Mix64(n))
	return float64(h>>11)/(1<<53) < p
}

// Fault returns the plan fault at index i (as reported in a Change).
func (in *Injector) Fault(i int) Fault { return in.plan.Faults[i] }

// Machines returns the compiled fleet width.
func (in *Injector) Machines() int {
	if in == nil {
		return 0
	}
	return in.machines
}
