// Package faults models deterministic failure injection for the
// simulated fleet: machine crashes with timed recovery, per-core stalls
// and slowdowns, and shard-link degradation (added routing latency and a
// drop probability).
//
// A Plan is an ordered list of Fault windows with start times and
// durations in simulated seconds, parsed from a compact spec string
// (see Parse) or JSON. Compile converts the plan to integer cycle
// triggers for one fleet shape; the resulting Injector is advanced in
// lockstep with the fleet clock and answers point queries (is machine m
// down, how slow is core c, what does machine m's link cost right now).
//
// Determinism contract: every trigger is an integer cycle count derived
// once at compile time, the only randomness is SplitMix64 keyed by the
// plan seed and the caller-supplied roll number (never by call order or
// wall clock), and identical (plan, shape, clock) inputs produce
// identical injections on the fast and naive simulator paths.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FaultKind discriminates the fault types a Plan can carry.
type FaultKind uint8

const (
	// Crash takes a whole machine down: cores stop retiring work,
	// admission refuses and fails over, heartbeats cease. Recovery at
	// the window end restores the machine with its queues aborted.
	Crash FaultKind = iota
	// Stall freezes a core range: threads stay queued but make no
	// progress until the window closes.
	Stall
	// Slow multiplies a core range's cycle cost by Factor.
	Slow
	// Link degrades routing to a machine: every request routed there
	// pays Delay extra seconds and is dropped with probability Drop.
	Link
)

// String names the kind as it appears in the spec grammar.
func (k FaultKind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case Slow:
		return "slow"
	case Link:
		return "link"
	default:
		return "unknown"
	}
}

// StallFactor is the per-core slowdown factor meaning "no progress at
// all"; any budget divided by it is zero cycles of useful work.
const StallFactor = ^uint64(0)

// Limits keep compiled cycle counts inside uint64 at any plausible
// clock rate; Parse and Validate reject plans outside them.
const (
	maxSeconds = 86400.0 // one simulated day
	maxFactor  = 1 << 32
	maxDelay   = 10.0 // seconds of added link latency
)

// Fault is one failure window. Times are simulated seconds from run
// start; For <= 0 means the fault never lifts.
type Fault struct {
	// Kind discriminates the fault.
	Kind FaultKind
	// Machine is the target machine index.
	Machine int
	// Core / CoreHi bound the affected core range, inclusive, for
	// Stall and Slow; Core == -1 means every core.
	Core   int
	CoreHi int
	// Factor is Slow's cycle-cost multiplier (>= 2).
	Factor uint64
	// Delay is Link's added routing latency in seconds.
	Delay float64
	// Drop is Link's drop probability in [0, 1].
	Drop float64
	// At is the window start in seconds.
	At float64
	// For is the window length in seconds; <= 0 keeps the fault
	// active for the rest of the run.
	For float64
}

// Plan is an ordered fault list plus the seed for randomized decisions
// (link drops). The zero value is the empty plan.
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Faults) == 0 }

// check validates one fault's shape-independent invariants; both
// parsers and Validate share it.
func check(f Fault) error {
	if f.Machine < 0 {
		return fmt.Errorf("fault %s: negative machine %d", f.Kind, f.Machine)
	}
	if f.At < 0 || f.At > maxSeconds || f.At != f.At {
		return fmt.Errorf("fault %s: start %v out of range [0, %v]", f.Kind, f.At, maxSeconds)
	}
	if f.For > maxSeconds || f.For != f.For {
		return fmt.Errorf("fault %s: duration %v out of range", f.Kind, f.For)
	}
	switch f.Kind {
	case Crash:
	case Stall, Slow:
		if f.Core == -1 && f.CoreHi != -1 || f.Core >= 0 && f.CoreHi < f.Core {
			return fmt.Errorf("fault %s: bad core range c%d-%d", f.Kind, f.Core, f.CoreHi)
		}
		if f.Kind == Slow && (f.Factor < 2 || f.Factor > maxFactor) {
			return fmt.Errorf("fault slow: factor %d out of range [2, %d]", f.Factor, maxFactor)
		}
	case Link:
		if f.Delay < 0 || f.Delay > maxDelay || f.Delay != f.Delay {
			return fmt.Errorf("fault link: delay %v out of range [0, %v]", f.Delay, maxDelay)
		}
		if f.Drop < 0 || f.Drop > 1 || f.Drop != f.Drop {
			return fmt.Errorf("fault link: drop %v out of range [0, 1]", f.Drop)
		}
		if f.Delay == 0 && f.Drop == 0 {
			return fmt.Errorf("fault link: needs a delay or a drop probability")
		}
	default:
		return fmt.Errorf("unknown fault kind %d", f.Kind)
	}
	return nil
}

// Validate checks the plan against a concrete fleet shape.
func (p *Plan) Validate(machines, cores int) error {
	if p == nil {
		return nil
	}
	for i, f := range p.Faults {
		if err := check(f); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
		if f.Machine >= machines {
			return fmt.Errorf("fault %d: machine %d out of range (fleet has %d)", i, f.Machine, machines)
		}
		if (f.Kind == Stall || f.Kind == Slow) && f.Core >= 0 && f.CoreHi >= cores {
			return fmt.Errorf("fault %d: core %d out of range (machine has %d)", i, f.CoreHi, cores)
		}
	}
	return nil
}

// fmtSec renders seconds canonically (shortest float form, "s" unit).
func fmtSec(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64) + "s"
}

// coreSpec renders a fault's core range as it appears in the grammar.
func coreSpec(f Fault) string {
	switch {
	case f.Core < 0:
		return "c*"
	case f.Core == f.CoreHi:
		return "c" + strconv.Itoa(f.Core)
	default:
		return fmt.Sprintf("c%d-%d", f.Core, f.CoreHi)
	}
}

// String renders the plan in the canonical spec grammar; Parse of the
// result reproduces the plan exactly.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, "seed "+strconv.FormatUint(p.Seed, 10))
	}
	for _, f := range p.Faults {
		var b strings.Builder
		fmt.Fprintf(&b, "%s m%d", f.Kind, f.Machine)
		switch f.Kind {
		case Stall:
			b.WriteString(" " + coreSpec(f))
		case Slow:
			fmt.Fprintf(&b, " %s x%d", coreSpec(f), f.Factor)
		case Link:
			if f.Delay > 0 {
				b.WriteString(" +" + fmtSec(f.Delay))
			}
			if f.Drop > 0 {
				b.WriteString(" drop " + strconv.FormatFloat(f.Drop, 'g', -1, 64))
			}
		}
		b.WriteString(" @" + fmtSec(f.At))
		if f.For > 0 {
			b.WriteString(" for " + fmtSec(f.For))
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, "; ")
}

// sortTransitions orders compiled windows deterministically: by cycle,
// then plan order, starts before same-fault ends (an end at the same
// cycle as another fault's start sorts by plan position, keeping the
// application order a pure function of the plan).
func sortTransitions(ts []transition) {
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].at != ts[j].at {
			return ts[i].at < ts[j].at
		}
		if ts[i].index != ts[j].index {
			return ts[i].index < ts[j].index
		}
		return ts[i].start && !ts[j].start
	})
}
