package faults

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// parse.go turns fault specs into Plans. Two forms are accepted:
//
// Spec grammar — semicolon-separated clauses, whitespace-separated
// tokens, times with a unit suffix (s, ms, us):
//
//	seed 42
//	crash m1 @2s for 1.5s
//	stall m2 c0-3 @1s for 1s
//	slow m0 c* x8 @1s for 2s
//	link m2 +0.5ms drop 0.3 @3s for 2s
//
// Omitting "for" keeps the fault active for the rest of the run. A
// core spec is c<i>, c<i>-<j> (inclusive) or c* (every core).
//
// JSON — a {"seed": n, "faults": [...]} object or a bare fault array,
// with times in seconds and the core range as a spec string:
//
//	{"seed": 42, "faults": [
//	  {"kind": "crash", "machine": 1, "at": 2, "for": 1.5},
//	  {"kind": "slow", "machine": 0, "core": "0-3", "factor": 8, "at": 1},
//	  {"kind": "link", "machine": 2, "delay": 0.0005, "drop": 0.3, "at": 3, "for": 2}]}

// Parse builds a Plan from a spec string or JSON document (detected by
// a leading '{' or '['). The empty string is the empty plan.
func Parse(spec string) (*Plan, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return &Plan{}, nil
	}
	if s[0] == '{' || s[0] == '[' {
		return parseJSON(s)
	}
	p := &Plan{}
	for ci, clause := range strings.Split(s, ";") {
		fields := strings.Fields(clause)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "seed" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("clause %d: seed wants one value", ci)
			}
			seed, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("clause %d: bad seed %q", ci, fields[1])
			}
			p.Seed = seed
			continue
		}
		f, err := parseClause(fields)
		if err != nil {
			return nil, fmt.Errorf("clause %d: %w", ci, err)
		}
		if err := check(f); err != nil {
			return nil, fmt.Errorf("clause %d: %w", ci, err)
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}

// parseClause parses one non-seed clause into a Fault.
func parseClause(fields []string) (Fault, error) {
	var f Fault
	switch fields[0] {
	case "crash":
		f.Kind = Crash
	case "stall":
		f.Kind = Stall
	case "slow":
		f.Kind = Slow
	case "link":
		f.Kind = Link
	default:
		return f, fmt.Errorf("unknown fault %q", fields[0])
	}
	f.Core, f.CoreHi = -1, -1
	i := 1
	next := func() (string, bool) {
		if i >= len(fields) {
			return "", false
		}
		tok := fields[i]
		i++
		return tok, true
	}

	tok, ok := next()
	if !ok || len(tok) < 2 || tok[0] != 'm' {
		return f, fmt.Errorf("%s: expected machine (m<i>), got %q", f.Kind, tok)
	}
	m, err := strconv.Atoi(tok[1:])
	if err != nil || m < 0 {
		return f, fmt.Errorf("%s: bad machine %q", f.Kind, tok)
	}
	f.Machine = m

	switch f.Kind {
	case Stall, Slow:
		tok, ok := next()
		if !ok {
			return f, fmt.Errorf("%s: expected core spec", f.Kind)
		}
		if f.Core, f.CoreHi, err = parseCores(tok); err != nil {
			return f, err
		}
		if f.Kind == Slow {
			tok, ok := next()
			if !ok || len(tok) < 2 || tok[0] != 'x' {
				return f, fmt.Errorf("slow: expected factor (x<n>), got %q", tok)
			}
			if f.Factor, err = strconv.ParseUint(tok[1:], 10, 64); err != nil {
				return f, fmt.Errorf("slow: bad factor %q", tok)
			}
		}
	case Link:
		for i < len(fields) && fields[i][0] != '@' {
			tok, _ := next()
			switch {
			case tok[0] == '+':
				if f.Delay, err = parseDur(tok[1:]); err != nil {
					return f, fmt.Errorf("link: bad delay %q: %w", tok, err)
				}
			case tok == "drop":
				tok, ok := next()
				if !ok {
					return f, fmt.Errorf("link: drop wants a probability")
				}
				if f.Drop, err = strconv.ParseFloat(tok, 64); err != nil {
					return f, fmt.Errorf("link: bad drop %q", tok)
				}
			default:
				return f, fmt.Errorf("link: unexpected token %q", tok)
			}
		}
	}

	tok, ok = next()
	if !ok || len(tok) < 2 || tok[0] != '@' {
		return f, fmt.Errorf("%s: expected start (@<time>), got %q", f.Kind, tok)
	}
	if f.At, err = parseDur(tok[1:]); err != nil {
		return f, fmt.Errorf("%s: bad start %q: %w", f.Kind, tok, err)
	}
	if tok, ok = next(); ok {
		if tok != "for" {
			return f, fmt.Errorf("%s: unexpected token %q", f.Kind, tok)
		}
		tok, ok = next()
		if !ok {
			return f, fmt.Errorf("%s: for wants a duration", f.Kind)
		}
		if f.For, err = parseDur(tok); err != nil {
			return f, fmt.Errorf("%s: bad duration %q: %w", f.Kind, tok, err)
		}
		if f.For <= 0 {
			return f, fmt.Errorf("%s: for wants a positive duration", f.Kind)
		}
	}
	if i != len(fields) {
		return f, fmt.Errorf("%s: trailing tokens %v", f.Kind, fields[i:])
	}
	return f, nil
}

// parseCores parses c<i>, c<i>-<j> or c*.
func parseCores(tok string) (lo, hi int, err error) {
	if len(tok) < 2 || tok[0] != 'c' {
		return 0, 0, fmt.Errorf("bad core spec %q (want c<i>, c<i>-<j> or c*)", tok)
	}
	body := tok[1:]
	if body == "*" {
		return -1, -1, nil
	}
	if a, b, found := strings.Cut(body, "-"); found {
		lo, err1 := strconv.Atoi(a)
		hi, err2 := strconv.Atoi(b)
		if err1 != nil || err2 != nil || lo < 0 || hi < lo {
			return 0, 0, fmt.Errorf("bad core range %q", tok)
		}
		return lo, hi, nil
	}
	c, err := strconv.Atoi(body)
	if err != nil || c < 0 {
		return 0, 0, fmt.Errorf("bad core %q", tok)
	}
	return c, c, nil
}

// parseDur parses a duration with an s/ms/us suffix into seconds; a
// bare number is seconds.
func parseDur(tok string) (float64, error) {
	scale := 1.0
	switch {
	case strings.HasSuffix(tok, "us"):
		tok, scale = tok[:len(tok)-2], 1e-6
	case strings.HasSuffix(tok, "ms"):
		tok, scale = tok[:len(tok)-2], 1e-3
	case strings.HasSuffix(tok, "s"):
		tok = tok[:len(tok)-1]
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q", tok)
	}
	v *= scale
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("time %q out of range", tok)
	}
	return v, nil
}

// jsonFault mirrors Fault with grammar-style core specs and lowercase
// kind names.
type jsonFault struct {
	Kind    string  `json:"kind"`
	Machine int     `json:"machine"`
	Core    string  `json:"core,omitempty"`
	Factor  uint64  `json:"factor,omitempty"`
	Delay   float64 `json:"delay,omitempty"`
	Drop    float64 `json:"drop,omitempty"`
	At      float64 `json:"at"`
	For     float64 `json:"for,omitempty"`
}

type jsonPlan struct {
	Seed   uint64      `json:"seed,omitempty"`
	Faults []jsonFault `json:"faults"`
}

// parseJSON accepts the object form or a bare fault array.
func parseJSON(s string) (*Plan, error) {
	var jp jsonPlan
	if s[0] == '[' {
		if err := json.Unmarshal([]byte(s), &jp.Faults); err != nil {
			return nil, fmt.Errorf("fault json: %w", err)
		}
	} else if err := json.Unmarshal([]byte(s), &jp); err != nil {
		return nil, fmt.Errorf("fault json: %w", err)
	}
	p := &Plan{Seed: jp.Seed}
	for i, jf := range jp.Faults {
		f := Fault{Machine: jf.Machine, Factor: jf.Factor, Delay: jf.Delay,
			Drop: jf.Drop, At: jf.At, For: jf.For, Core: -1, CoreHi: -1}
		switch jf.Kind {
		case "crash":
			f.Kind = Crash
		case "stall":
			f.Kind = Stall
		case "slow":
			f.Kind = Slow
		case "link":
			f.Kind = Link
		default:
			return nil, fmt.Errorf("fault %d: unknown kind %q", i, jf.Kind)
		}
		if jf.Core != "" && jf.Core != "*" {
			var err error
			if f.Core, f.CoreHi, err = parseCores("c" + jf.Core); err != nil {
				return nil, fmt.Errorf("fault %d: %w", i, err)
			}
		}
		if err := check(f); err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		p.Faults = append(p.Faults, f)
	}
	return p, nil
}
