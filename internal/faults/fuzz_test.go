package faults

import (
	"reflect"
	"testing"
)

// FuzzFaultPlan throws arbitrary bytes at the spec/JSON parser. The
// invariants: Parse never panics, and any accepted plan's canonical
// String form re-parses to an identical plan (so specs stored in CI
// configs or golden files survive a round through the renderer).
func FuzzFaultPlan(f *testing.F) {
	f.Add("crash m1 @2s for 1.5s")
	f.Add("seed 42; stall m2 c0-3 @1s for 1s; slow m0 c* x8 @1s for 2s")
	f.Add("link m2 +0.5ms drop 0.3 @3s for 2s; link m0 +1ms @0s")
	f.Add(`{"seed": 7, "faults": [{"kind": "crash", "machine": 1, "at": 2}]}`)
	f.Add(`[{"kind": "slow", "machine": 0, "core": "0-3", "factor": 8, "at": 1}]`)
	f.Add("slow m0 c1 x1 @1s")
	f.Add("crash m999999999999999999999 @1s")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return
		}
		canon := p.String()
		q, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: Parse(%q) of plan from %q: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("roundtrip drifted for %q:\ncanon %q\nfirst %+v\nsecond %+v", spec, canon, p, q)
		}
		// An accepted plan must also compile without panicking on a
		// shape it validates against.
		if p.Validate(4, 4) == nil {
			in := p.Compile(4, 4, func(sec float64) uint64 { return uint64(sec * 1e9) })
			in.Advance(^uint64(0))
		}
	})
}
