package faults

import (
	"reflect"
	"strings"
	"testing"
)

// roundtrip asserts Parse(plan.String()) reproduces the plan.
func roundtrip(t *testing.T, p *Plan) {
	t.Helper()
	spec := p.String()
	got, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("roundtrip drifted:\nspec %q\nwant %+v\ngot  %+v", spec, p, got)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := Parse("seed 42; crash m1 @2s for 1.5s; stall m2 c0-3 @1s for 1s; slow m0 c* x8 @1s for 2s; link m2 +0.5ms drop 0.3 @3s for 2s")
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{Seed: 42, Faults: []Fault{
		{Kind: Crash, Machine: 1, Core: -1, CoreHi: -1, At: 2, For: 1.5},
		{Kind: Stall, Machine: 2, Core: 0, CoreHi: 3, At: 1, For: 1},
		{Kind: Slow, Machine: 0, Core: -1, CoreHi: -1, Factor: 8, At: 1, For: 2},
		{Kind: Link, Machine: 2, Core: -1, CoreHi: -1, Delay: 0.0005, Drop: 0.3, At: 3, For: 2},
	}}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parse mismatch:\nwant %+v\ngot  %+v", want, p)
	}
	roundtrip(t, p)
}

func TestParseJSON(t *testing.T) {
	spec := `{"seed": 42, "faults": [
		{"kind": "crash", "machine": 1, "at": 2, "for": 1.5},
		{"kind": "slow", "machine": 0, "core": "0-3", "factor": 8, "at": 1},
		{"kind": "link", "machine": 2, "delay": 0.0005, "drop": 0.3, "at": 3, "for": 2}]}`
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{Seed: 42, Faults: []Fault{
		{Kind: Crash, Machine: 1, Core: -1, CoreHi: -1, At: 2, For: 1.5},
		{Kind: Slow, Machine: 0, Core: 0, CoreHi: 3, Factor: 8, At: 1},
		{Kind: Link, Machine: 2, Core: -1, CoreHi: -1, Delay: 0.0005, Drop: 0.3, At: 3, For: 2},
	}}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("json parse mismatch:\nwant %+v\ngot  %+v", want, p)
	}
	roundtrip(t, p)

	// A bare array is the faults-only form.
	arr, err := Parse(`[{"kind": "crash", "machine": 0, "at": 1}]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr.Faults) != 1 || arr.Faults[0].Kind != Crash {
		t.Fatalf("bare array parse: %+v", arr)
	}
}

func TestParseEmpty(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;"} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if !p.Empty() {
			t.Fatalf("Parse(%q) not empty: %+v", spec, p)
		}
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"crash @2s",                              // no machine
		"crash m1",                               // no start
		"crash m1 @2s for 0s",                    // zero duration
		"crash m1 @2s for -1s",                   // negative duration
		"slow m0 c1 @1s",                         // no factor
		"slow m0 c1 x1 @1s",                      // factor below 2
		"stall m0 @1s",                           // no core spec
		"stall m0 c3-1 @1s",                      // inverted range
		"link m0 @1s",                            // neither delay nor drop
		"link m0 drop 1.5 @1s",                   // drop > 1
		"link m0 drop NaN @1s",                   // non-finite
		"link m0 +99s @1s",                       // delay over limit
		"crash m1 @999999s",                      // start over limit
		"explode m1 @1s",                         // unknown kind
		"crash m1 @1s extra",                     // trailing tokens
		`[{"kind":"warp","at":1}]`,               // unknown JSON kind
		`{"faults":[{"kind":"crash"`,             // truncated JSON
		`[{"kind":"slow","core":"q"}]`,           // bad core spec
		`[{"kind":"crash","machine":-1,"at":1}]`, // negative machine
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad plan", spec)
		}
	}
}

func TestValidateShape(t *testing.T) {
	p, err := Parse("crash m3 @1s; stall m0 c7 @1s")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4, 8); err != nil {
		t.Fatalf("plan should fit a 4x8 fleet: %v", err)
	}
	if err := p.Validate(3, 8); err == nil {
		t.Error("machine 3 accepted on a 3-machine fleet")
	}
	if err := p.Validate(4, 4); err == nil {
		t.Error("core 7 accepted on a 4-core machine")
	}
}

// s2c is a fixed test clock: 1000 cycles per second.
func s2c(sec float64) uint64 { return uint64(sec * 1000) }

func TestInjectorWindows(t *testing.T) {
	p, err := Parse("crash m1 @2s for 1s; slow m0 c2-3 x8 @1s for 3s; link m1 +0.1s drop 0.5 @0s")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Compile(2, 4, s2c)

	ch := in.Advance(0)
	if len(ch) != 1 || ch[0].Index != 2 || !ch[0].Start {
		t.Fatalf("cycle 0 changes: %+v", ch)
	}
	if got := in.LinkDelay(1); got != 100 {
		t.Fatalf("link delay = %d cycles, want 100", got)
	}
	if in.LinkDrop(1) != 0.5 || in.LinkDrop(0) != 0 {
		t.Fatal("link drop state wrong")
	}

	in.Advance(1500)
	if in.CoreFactor(0, 2) != 8 || in.CoreFactor(0, 3) != 8 {
		t.Fatal("slow window not applied to c2-3")
	}
	if in.CoreFactor(0, 0) != 1 || in.CoreFactor(1, 2) != 1 {
		t.Fatal("slow window leaked outside its range")
	}
	if in.Down(1) {
		t.Fatal("machine 1 down before its crash window")
	}

	in.Advance(2000)
	if !in.Down(1) || in.Down(0) {
		t.Fatal("crash window not applied at 2s")
	}

	ch = in.Advance(3000)
	if len(ch) != 1 || ch[0].Index != 0 || ch[0].Start {
		t.Fatalf("recovery edge: %+v", ch)
	}
	if in.Down(1) {
		t.Fatal("machine 1 still down after recovery")
	}

	in.Advance(4000)
	if in.CoreFactor(0, 2) != 1 {
		t.Fatal("slow window did not lift at 4s")
	}
	if !in.Done() {
		t.Fatal("injector not done after the last timed edge")
	}
	// The permanent link fault stays live forever.
	if in.LinkDrop(1) != 0.5 {
		t.Fatal("permanent link fault lifted")
	}
}

func TestInjectorStallAndOverlap(t *testing.T) {
	p, err := Parse("slow m0 c0 x4 @0s for 10s; stall m0 c0 @1s for 1s")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Compile(1, 2, s2c)
	in.Advance(500)
	if in.CoreFactor(0, 0) != 4 {
		t.Fatal("slow factor not applied")
	}
	in.Advance(1000)
	if in.CoreFactor(0, 0) != StallFactor {
		t.Fatal("overlapping stall must dominate the slow factor")
	}
	in.Advance(2000)
	if in.CoreFactor(0, 0) != 4 {
		t.Fatal("stall end must fall back to the still-live slow factor")
	}
}

func TestDropRollDeterministic(t *testing.T) {
	p, _ := Parse("seed 9; link m0 drop 0.5 @0s")
	a := p.Compile(1, 1, s2c)
	b := p.Compile(1, 1, s2c)
	a.Advance(0)
	b.Advance(0)
	drops := 0
	for n := uint64(0); n < 2000; n++ {
		da, db := a.DropRoll(0, n), b.DropRoll(0, n)
		if da != db {
			t.Fatalf("roll %d differs between identical injectors", n)
		}
		if da {
			drops++
		}
	}
	// The rate must track the probability (loose 10% band).
	if drops < 800 || drops > 1200 {
		t.Errorf("drop rate %d/2000 far from p=0.5", drops)
	}
	// Rolls are order-independent: the same n answers the same.
	if a.DropRoll(0, 7) != b.DropRoll(0, 7) {
		t.Error("re-rolling n=7 changed the answer")
	}
}

func TestNilInjectorIsHealthy(t *testing.T) {
	var in *Injector
	if in.Down(0) || in.CoreFactor(0, 0) != 1 || in.LinkDelay(0) != 0 ||
		in.LinkDrop(0) != 0 || in.DropRoll(0, 1) || !in.Done() {
		t.Fatal("nil injector must read as a healthy fleet")
	}
	if in.Advance(100) != nil {
		t.Fatal("nil injector advanced")
	}
}

func TestStringStable(t *testing.T) {
	spec := "seed 42; crash m1 @2s for 1.5s; link m2 +0.0005s drop 0.3 @3s for 2s"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != spec {
		t.Fatalf("canonical form drifted:\nwant %q\ngot  %q", spec, got)
	}
	if !strings.Contains((&Plan{}).String(), "") {
		t.Fatal("empty plan String must not panic")
	}
}
