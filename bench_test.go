package elasticore

// bench_test.go regenerates every table and figure of the paper's
// evaluation as Go benchmarks — one per artifact, plus ablations of the
// design choices called out in DESIGN.md. Each benchmark delegates to the
// corresponding internal/experiments harness and reports the figure's
// headline quantities as custom metrics.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFig19 -benchtime=1x

import (
	"context"
	"fmt"
	"testing"

	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/experiments"
	"elasticore/internal/numa"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// BenchmarkRunnerBatch exercises the experiment platform end to end: two
// registered experiments resolved from the registry and executed
// concurrently by the worker-pool Runner.
func BenchmarkRunnerBatch(b *testing.B) {
	r := &Runner{Parallel: 2, Config: ExperimentConfig{SF: 0.002, Clients: 8}}
	for i := 0; i < b.N; i++ {
		reports, err := r.RunNames(context.Background(), "fig5", "overhead")
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range reports {
			if rep.Err != nil {
				b.Fatalf("%s: %v", rep.Name, rep.Err)
			}
		}
	}
}

// benchConfig is the common operating point: large enough for the shapes
// to be stable, small enough for the full suite to finish in minutes.
func benchConfig() experiments.Config {
	return experiments.Config{SF: 0.005, Clients: 32, Users: []int{1, 4, 16, 64}, Seed: 1}
}

// BenchmarkFig04 regenerates Figure 4: Q6 throughput, minor faults/s and
// HT MB/s under increasing concurrency for Dense/C, Sparse/C, OS/C and
// OS/MonetDB.
func BenchmarkFig04(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		users := 64
		mdb, c := res.Row("OS/MonetDB", users), res.Row("OS/C", users)
		if mdb != nil && c != nil && c.HTMBPerS > 0 {
			b.ReportMetric(mdb.HTMBPerS/c.HTMBPerS, "HT-monetdb/C-x")
			b.ReportMetric(mdb.Throughput, "monetdb-q/s")
		}
	}
}

// BenchmarkFig05 regenerates Figures 5 and 6: single-client thread
// migration map and the per-operator tomograph.
func BenchmarkFig05(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Migrations), "migrations")
		b.ReportMetric(float64(res.ParallelTheta), "theta-fanout")
	}
}

// BenchmarkFig07 regenerates Figure 7: PrT state transitions and core
// allocation over a Q6 burst.
func BenchmarkFig07(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.PeakCores), "peak-cores")
		b.ReportMetric(float64(res.Allocations), "allocs")
		b.ReportMetric(float64(res.Releases), "releases")
	}
}

// BenchmarkFig13 regenerates Figure 13: throughput, CPU load, tasks and
// stolen tasks for OS/Dense/Sparse/Adaptive under a concurrency sweep.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		users := 64
		osRow, ad := res.Row(workload.ModeOS, users), res.Row(workload.ModeAdaptive, users)
		if osRow != nil && ad != nil && osRow.Throughput > 0 {
			b.ReportMetric(ad.Throughput/osRow.Throughput, "tput-adaptive/os")
			if ad.StolenTasks > 0 {
				b.ReportMetric(float64(osRow.StolenTasks)/float64(ad.StolenTasks), "stolen-os/adaptive")
			}
		}
	}
}

// BenchmarkFig14 regenerates Figure 14: per-socket L3 misses, memory
// throughput and HT traffic at the highest concurrency.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		osRow, ad := res.Row(workload.ModeOS), res.Row(workload.ModeAdaptive)
		if ad.HTGBPerS > 0 {
			b.ReportMetric(osRow.HTGBPerS/ad.HTGBPerS, "HT-os/adaptive")
		}
		b.ReportMetric(float64(ad.TotalL3Misses)/float64(osRow.TotalL3Misses), "L3-adaptive/os")
	}
}

// BenchmarkFig15 regenerates Figure 15: L3 misses across selectivities.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig15(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		hi := res.Row(workload.ModeOS, 1.0)
		lo := res.Row(workload.ModeOS, 0.02)
		if lo.L3Misses > 0 {
			b.ReportMetric(float64(hi.L3Misses)/float64(lo.L3Misses), "miss-growth-os")
		}
	}
}

// BenchmarkFig16 regenerates Figure 16: migration maps per mode.
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig16(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Row(workload.ModeOS).NodesTouched), "os-nodes")
		b.ReportMetric(float64(res.Row(workload.ModeAdaptive).NodesTouched), "adaptive-nodes")
	}
}

// BenchmarkFig17 regenerates Figure 17: CPU-load vs HT/IMC strategies.
func BenchmarkFig17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig17(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		osRow := res.Row(workload.ModeOS, "-")
		ad := res.Row(workload.ModeAdaptive, "cpu-load")
		if ad.ResponseSecs > 0 {
			b.ReportMetric(osRow.ResponseSecs/ad.ResponseSecs, "speedup-adaptive")
		}
		if ad.HTMBPerS > 0 {
			b.ReportMetric(osRow.HTMBPerS/ad.HTMBPerS, "HT-os/adaptive")
		}
	}
}

// BenchmarkFig18 regenerates Figure 18: the stable-phases workload for
// {OS, Adaptive} x {MonetDB-like, SQL-Server-like}.
func BenchmarkFig18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig18(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		osRun, adRun := res.Run("OS/MonetDB"), res.Run("Adaptive/MonetDB")
		if adRun.TotalSeconds > 0 {
			b.ReportMetric(osRun.TotalSeconds/adRun.TotalSeconds, "speedup-monetdb")
		}
		osS, adS := res.Run("OS/SQLServer"), res.Run("Adaptive/SQLServer")
		if adS.TotalSeconds > 0 {
			b.ReportMetric(osS.TotalSeconds/adS.TotalSeconds, "speedup-sqlserver")
		}
	}
}

// BenchmarkFig19MonetDB regenerates Figure 19 (a): per-query speedup and
// HT/IMC ratio for the MonetDB-like engine.
func BenchmarkFig19MonetDB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig19(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxSpeedup, "max-speedup")
		b.ReportMetric(res.MeanSpeedup, "mean-speedup")
		b.ReportMetric(res.MaxRatioImprovement, "max-ratio-x")
	}
}

// BenchmarkFig19SQLServer regenerates Figure 19 (b) for the NUMA-aware
// engine.
func BenchmarkFig19SQLServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := benchConfig()
		c.Placement = db.PlacementNUMAAware
		res, err := experiments.RunFig19(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MaxSpeedup, "max-speedup")
		b.ReportMetric(res.MaxRatioImprovement, "max-ratio-x")
	}
}

// BenchmarkFig20 regenerates Figure 20: per-query CPU and HT energy.
func BenchmarkFig20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig20(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TotalSavingsPct, "total-savings-%")
		b.ReportMetric(res.GeoHTSavingsPct, "ht-savings-%")
	}
}

// BenchmarkOverheadDense, ...Sparse and ...Adaptive regenerate the
// Section V overhead measurement: the cost of one token flow through the
// 5x8 net per allocation mode (paper: dense 0.017 s < sparse 0.021 s <
// adaptive 0.031 s on their prototype; the shape target is the ordering).
func BenchmarkOverheadDense(b *testing.B)    { benchOverhead(b, workload.ModeDense) }
func BenchmarkOverheadSparse(b *testing.B)   { benchOverhead(b, workload.ModeSparse) }
func BenchmarkOverheadAdaptive(b *testing.B) { benchOverhead(b, workload.ModeAdaptive) }

func benchOverhead(b *testing.B, mode workload.Mode) {
	r, err := NewRig(RigOptions{SF: 0.002, Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		r.Engine.Submit(tpch.Build(6, uint64(i)))
	}
	for i := 0; i < 20; i++ {
		r.Sched.Tick()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Mech.Step()
	}
}

// BenchmarkAblationControlPeriod sweeps the mechanism's control period,
// the reaction-latency trade-off DESIGN.md calls out.
func BenchmarkAblationControlPeriod(b *testing.B) {
	topo := numa.Opteron8387()
	for _, period := range []float64{0.25e-3, 1e-3, 4e-3} {
		period := period
		b.Run(formatSeconds(period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := NewRig(RigOptions{
					SF:            0.002,
					Mode:          ModeAdaptive,
					Quantum:       topo.SecondsToCycles(50e-6),
					ControlPeriod: topo.SecondsToCycles(period),
				})
				if err != nil {
					b.Fatal(err)
				}
				d := &Driver{Rig: r, QueriesPerClient: 2}
				res := d.RunSameQuery(16, tpch.BuildQ6)
				b.ReportMetric(res.Throughput, "q/s")
			}
		})
	}
}

// BenchmarkAblationThresholds sweeps thmin/thmax (paper: lower thmin
// leaves cores idle; higher thmax causes contention).
func BenchmarkAblationThresholds(b *testing.B) {
	for _, th := range []struct{ min, max int }{{5, 50}, {10, 70}, {20, 90}} {
		th := th
		b.Run(formatThresholds(th.min, th.max), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := NewRig(RigOptions{
					SF:       0.002,
					Mode:     ModeAdaptive,
					Strategy: elastic.CPULoadStrategy{ThMin: th.min, ThMax: th.max},
				})
				if err != nil {
					b.Fatal(err)
				}
				d := &Driver{Rig: r, QueriesPerClient: 2}
				res := d.RunSameQuery(16, tpch.BuildQ6)
				b.ReportMetric(res.Throughput, "q/s")
			}
		})
	}
}

// BenchmarkAblationPriorityPolicy compares the residency priority queue
// against naive round-robin node selection for the adaptive mode.
func BenchmarkAblationPriorityPolicy(b *testing.B) {
	run := func(b *testing.B, useQueue bool) {
		for i := 0; i < b.N; i++ {
			topo := numa.Opteron8387()
			var opts RigOptions
			opts.SF = 0.002
			if useQueue {
				opts.Mode = ModeAdaptive
			} else {
				opts.Mode = ModeSparse // round-robin next-node order
			}
			opts.Quantum = topo.SecondsToCycles(50e-6)
			opts.ControlPeriod = topo.SecondsToCycles(0.25e-3)
			r, err := NewRig(opts)
			if err != nil {
				b.Fatal(err)
			}
			d := &Driver{Rig: r, QueriesPerClient: 2}
			res := d.RunSameQuery(16, tpch.BuildQ6)
			b.ReportMetric(res.Window.HTIMCRatio(), "ht/imc")
		}
	}
	b.Run("priority-queue", func(b *testing.B) { run(b, true) })
	b.Run("round-robin", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationCacheBlock sweeps the placement/caching granularity of
// the machine model.
func BenchmarkAblationCacheBlock(b *testing.B) {
	for _, kb := range []int{4, 16, 64} {
		kb := kb
		b.Run(formatKB(kb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topo := numa.Opteron8387()
				topo.BlockBytes = kb * 1024
				r, err := NewRig(RigOptions{SF: 0.002, Mode: ModeAdaptive, Topology: topo})
				if err != nil {
					b.Fatal(err)
				}
				d := &Driver{Rig: r, QueriesPerClient: 2}
				res := d.RunSameQuery(8, tpch.BuildQ6)
				b.ReportMetric(res.Throughput, "q/s")
			}
		})
	}
}

func formatSeconds(s float64) string { return fmt.Sprintf("%.2gms", s*1e3) }

func formatThresholds(min, max int) string { return fmt.Sprintf("th%d-%d", min, max) }

func formatKB(kb int) string { return fmt.Sprintf("%dKiB", kb) }
