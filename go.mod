module elasticore

go 1.22
