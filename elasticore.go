// Package elasticore is a faithful, fully self-contained reproduction of
// "An Elastic Multi-Core Allocation Mechanism for Database Systems"
// (Dominico, de Almeida, Meira, Alves — ICDE 2018).
//
// The library bundles everything the paper's system needs, built from
// scratch on the standard library:
//
//   - a deterministic NUMA machine model with hardware counters
//     (internal/numa),
//   - an OS scheduler with load balancing, stealing and cgroups
//     (internal/sched),
//   - the Predicate/Transition net formalism and the paper's elastic net
//     (internal/petrinet),
//   - the elastic allocation mechanism with its dense/sparse/adaptive
//     modes and CPU-load / HT-IMC strategies (internal/elastic),
//   - a Volcano-style columnar DBMS in MonetDB-like and SQL-Server-like
//     flavours (internal/db),
//   - a TPC-H generator and all 22 queries (internal/tpch),
//   - workload drivers, energy model, trace facilities and one
//     experiment harness per paper figure (internal/workload,
//     internal/metrics, internal/trace, internal/experiments),
//   - multi-tenant consolidation: per-tenant elastic mechanisms under a
//     machine-level, SLA-weighted core arbiter (internal/tenant),
//   - a cluster tier: sharded fleets of lockstep machines behind a
//     scatter-gather coordinator, with a second control tier moving
//     cores across machines at an explicit migration cost
//     (internal/cluster),
//   - deterministic fault injection: scheduled crashes, slow cores and
//     lossy links (internal/faults), survived through replica failover,
//     retries, hedged requests and health-monitor-driven shard
//     re-assignment (internal/cluster).
//
// This file re-exports the handful of types a downstream user needs to
// run elastic-allocation experiments without reaching into the internal
// packages; the examples/ directory shows complete programs.
package elasticore

import (
	"io"

	"elasticore/internal/arrivals"
	"elasticore/internal/cluster"
	"elasticore/internal/db"
	"elasticore/internal/elastic"
	"elasticore/internal/experiments"
	"elasticore/internal/faults"
	"elasticore/internal/metrics"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
	"elasticore/internal/tenant"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

// Core hardware and OS model types.
type (
	// Topology describes a NUMA machine's shape.
	Topology = numa.Topology
	// Machine is the counter-accurate NUMA hardware model.
	Machine = numa.Machine
	// Counters is a snapshot of the hardware-counter surface.
	Counters = numa.Counters
	// Scheduler is the OS CPU-scheduler model.
	Scheduler = sched.Scheduler
	// CPUSet is a set of cores (the cgroup cpuset unit).
	CPUSet = sched.CPUSet
)

// Mechanism and policy types.
type (
	// Mechanism is the paper's elastic multi-core allocation mechanism.
	Mechanism = elastic.Mechanism
	// Allocator is an allocation mode (dense, sparse, adaptive).
	Allocator = elastic.Allocator
	// Strategy is a state-transition metric (CPU load or HT/IMC ratio).
	Strategy = elastic.Strategy
	// Placement is a topology-aware core placement policy: it ranks
	// candidate cores by the machine's hop-distance matrix instead of a
	// fixed index order (node-fill, hop-min, scatter).
	Placement = elastic.Placement
)

// Built-in placement policies.

// NodeFillPlacement packs cores socket by socket, opening each new
// socket at minimum hop distance from the cores already held.
func NodeFillPlacement() Placement { return elastic.NodeFill{} }

// HopMinPlacement grows and shrinks core by core on pure hop distance.
func HopMinPlacement() Placement { return elastic.HopMin{} }

// ScatterPlacement is the topology-blind round-robin baseline.
func ScatterPlacement() Placement { return elastic.Scatter{} }

// Placements lists the built-in placement policies.
func Placements() []Placement { return elastic.Placements() }

// NewPlacedAllocator adapts a Placement into an allocation mode usable
// wherever dense/sparse/adaptive are (RigOptions.CorePlacement wires it
// automatically).
func NewPlacedAllocator(t *Topology, p Placement) Allocator { return elastic.NewPlaced(t, p) }

// Database types.
type (
	// Engine is the Volcano-style columnar engine.
	Engine = db.Engine
	// Plan is an operator pipeline.
	Plan = db.Plan
	// Query is one executing plan instance.
	Query = db.Query
)

// Workload rig types.
type (
	// Rig is a fully wired experiment environment: machine, scheduler,
	// store, engine, cgroup, mechanism.
	Rig = workload.Rig
	// RigOptions configures NewRig.
	RigOptions = workload.Options
	// Mode selects OS baseline or a mechanism allocation mode.
	Mode = workload.Mode
	// Driver runs concurrent client streams against a rig (closed loop:
	// each client submits its next query when the previous completes).
	Driver = workload.Driver
)

// Open-loop traffic types: queries arrive from an independent seeded
// arrival process, wait in a bounded admission queue, and latency splits
// into queue wait plus service time — the regime where backlog, load
// shedding and tail latency are measurable.
type (
	// ArrivalProcess generates a deterministic arrival-time stream
	// (Poisson, MMPP, diurnal ramp or a fixed trace).
	ArrivalProcess = arrivals.Process
	// OpenDriver replays an arrival process against a rig.
	OpenDriver = workload.OpenDriver
	// OpenResult summarizes an open-loop phase: admission counts and
	// queue-wait/service/latency histograms.
	OpenResult = workload.OpenResult
	// OpenSample is one timeline point of an open-loop phase.
	OpenSample = workload.OpenSample
	// Histogram is the log-bucketed, mergeable latency histogram behind
	// OpenResult (p50/p90/p99/max with bounded relative error).
	Histogram = metrics.Histogram
)

// PoissonArrivals returns a constant-rate arrival process (rate in
// arrivals per second).
func PoissonArrivals(rate float64, seed uint64) ArrivalProcess {
	return arrivals.NewPoisson(rate, seed)
}

// MMPPArrivals returns a two-state bursty process alternating between a
// base and a burst rate with the given mean dwell times (seconds).
func MMPPArrivals(baseRate, burstRate, baseDwell, burstDwell float64, seed uint64) ArrivalProcess {
	return arrivals.NewMMPP(baseRate, burstRate, baseDwell, burstDwell, seed)
}

// DiurnalArrivals returns a sinusoidally ramping process: rate(t) =
// base * (1 + amp*sin(2πt/period)).
func DiurnalArrivals(base, amp, period float64, seed uint64) ArrivalProcess {
	return arrivals.NewDiurnal(base, amp, period, seed)
}

// TraceArrivals replays a fixed, sorted list of arrival times (seconds).
func TraceArrivals(times []float64) ArrivalProcess {
	return arrivals.NewTrace(times)
}

// Telemetry types (internal/obs): the simulation-wide event bus, probe
// snapshots and trace export behind `elasticbench run -trace`.
type (
	// Bus is the typed telemetry event bus every rig layer publishes
	// onto: migrations, run slices, task completions, PrT transitions,
	// arbiter grants, admissions, sheds and query completions.
	Bus = obs.Bus
	// Event is the bus's flat record; EventKind discriminates it.
	Event = obs.Event
	// EventKind discriminates bus events (obs.KindMigration, ...).
	EventKind = obs.Kind
	// Probe samples Snapshot timelines at control-period boundaries.
	Probe = obs.Probe
	// ProbeConfig assembles a Probe.
	ProbeConfig = obs.ProbeConfig
	// Snapshot is one probe sample: allocation, load, backlog, window
	// traffic, energy and latency quantiles.
	Snapshot = obs.Snapshot
)

// NewBus creates a telemetry bus retaining up to capacity events
// (capacity <= 0 selects the default ring size). Pass it through
// RigOptions.Bus / MultiRigOptions.Bus or ExperimentConfig.Bus to light
// up every producer of a rig.
func NewBus(capacity int) *Bus { return obs.NewBus(capacity) }

// WritePerfettoTrace renders recorded bus events as Chrome/Perfetto
// trace-event JSON (open the file at ui.perfetto.dev).
func WritePerfettoTrace(w io.Writer, events []Event) error { return obs.WriteTrace(w, events) }

// Event kinds re-exported for Bus.Subscribe filters.
const (
	KindMigration  = obs.KindMigration
	KindRunSlice   = obs.KindRunSlice
	KindTaskDone   = obs.KindTaskDone
	KindTransition = obs.KindTransition
	KindGrant      = obs.KindGrant
	KindAdmit      = obs.KindAdmit
	KindShed       = obs.KindShed
	KindQueryDone  = obs.KindQueryDone
	KindRoute      = obs.KindRoute
	KindRebalance  = obs.KindRebalance
	KindFault      = obs.KindFault
	KindRetry      = obs.KindRetry
	KindFailover   = obs.KindFailover
	KindReassign   = obs.KindReassign
	KindHeartbeat  = obs.KindHeartbeat
)

// Cluster tier types (internal/cluster): the single-machine mechanism
// scaled out — N lockstep simulated machines behind a sharded TPC-H
// dataset, an open-loop coordinator routing and scatter-gathering
// queries, and a second control tier moving whole cores across machines
// with an explicit migration-latency cost.
type (
	// Fleet is N lockstep machines (each a Rig) behind one Sharder.
	Fleet = cluster.Fleet
	// FleetOptions configures NewFleet.
	FleetOptions = cluster.Options
	// Sharder owns the deterministic key -> shard -> machine placement
	// (hashed shards, contiguous per-machine ranges).
	Sharder = cluster.Sharder
	// Coordinator replays an arrival process against a fleet: keyed
	// requests go to their shard's owner, unkeyed ones to the
	// least-loaded machine, every n-th as a scatter-gather over all.
	Coordinator = cluster.Coordinator
	// CoordinatorResult summarizes one coordinator run, with fleet-wide
	// histograms and per-machine stats.
	CoordinatorResult = cluster.Result
	// BalancePolicy routes unkeyed requests (shortest-queue or weighted
	// by allocated cores).
	BalancePolicy = cluster.Policy
	// ClusterArbiter is the cluster-level control tier: it collects the
	// per-machine mechanisms' desired allocations and moves whole cores
	// across machines within a fleet-wide budget, charging a migration
	// latency per moved core.
	ClusterArbiter = cluster.ClusterArbiter
	// ClusterArbiterConfig assembles a ClusterArbiter.
	ClusterArbiterConfig = cluster.ClusterArbiterConfig
)

// Balance policies re-exported for Coordinator construction.
const (
	BalanceShortestQueue = cluster.BalanceShortestQueue
	BalanceWeighted      = cluster.BalanceWeighted
)

// NewFleet builds N lockstep machines, each loading its owned fraction
// of the total scale factor (the fleet as a whole stores one database).
func NewFleet(opts FleetOptions) (*Fleet, error) { return cluster.NewFleet(opts) }

// NewSharder partitions `shards` hashed shards into contiguous ranges
// across `machines` (shards >= machines >= 1).
func NewSharder(shards, machines int) (*Sharder, error) {
	return cluster.NewSharder(shards, machines)
}

// NewClusterArbiter attaches the cluster control tier to a fleet; every
// machine must run an elastic mode (the per-machine mechanisms evaluate,
// the arbiter applies).
func NewClusterArbiter(cfg ClusterArbiterConfig) (*ClusterArbiter, error) {
	return cluster.NewClusterArbiter(cfg)
}

// Fault-injection types (internal/faults, internal/cluster): the
// deterministic failure plans a fleet compiles and injects as it ticks,
// and the health monitor that detects the damage and re-homes shards.
type (
	// FaultPlan is a validated, deterministic failure schedule: machine
	// crashes with timed recovery, per-core stalls and slowdowns, and
	// degraded shard links. Pass it through FleetOptions.Faults.
	FaultPlan = faults.Plan
	// Fault is one scheduled failure window of a FaultPlan.
	Fault = faults.Fault
	// FaultKind discriminates faults (crash, stall, slow, link).
	FaultKind = faults.FaultKind
	// FaultInjector is a plan compiled against a concrete fleet; the
	// fleet drives it cycle by cycle and its read surface (Down,
	// CoreFactor, LinkDelay, LinkDrop) is nil-safe.
	FaultInjector = faults.Injector
	// HealthMonitor is the fleet's failure detector and repair loop:
	// heartbeat-gap death detection, shard re-assignment with an
	// explicit transfer cost, brownout load-shedding and recovery.
	HealthMonitor = cluster.HealthMonitor
	// HealthConfig assembles a HealthMonitor.
	HealthConfig = cluster.HealthConfig
)

// ParseFaultPlan parses a failure-plan spec — the semicolon grammar
// ("crash m1 @2s for 1.5s; slow m0 c* x8 @1s; link m2 +0.5ms drop 0.3
// @3s for 2s; seed 42") or the equivalent JSON document. The empty
// string is the empty plan, which injects nothing.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return faults.Parse(spec) }

// NewReplicatedSharder partitions `shards` hashed shards across
// `machines` keeping `replicas` copies of each (the primary plus R-1
// successor machines); keyed routing prefers the primary and fails over
// along the replica set. NewSharder is the replicas == 1 special case.
func NewReplicatedSharder(shards, machines, replicas int) (*Sharder, error) {
	return cluster.NewReplicatedSharder(shards, machines, replicas)
}

// NewHealthMonitor wires heartbeat-driven failure detection onto a
// fleet: a machine whose beats stop is declared dead, its shards
// re-home onto surviving replicas (charging the transfer against the
// cluster arbiter's budget), and a recovered machine gets them back.
func NewHealthMonitor(cfg HealthConfig) (*HealthMonitor, error) {
	return cluster.NewHealthMonitor(cfg)
}

// Multi-tenant consolidation types (the paper's Section VII cloud
// setting): several tenant databases, each with its own elastic
// mechanism, share one machine under a core arbiter.
type (
	// Tenant is one consolidated database: cgroup, mechanism, SLA.
	Tenant = tenant.Tenant
	// Arbiter divides the machine's cores among tenants every control
	// period: SLA-weighted shares, starvation floors, no over-commit.
	Arbiter = tenant.Arbiter
	// SLA is a tenant's agreement: weight, core floor, traffic budget.
	SLA = tenant.SLA
	// MultiRig is a fully wired multi-tenant experiment environment.
	MultiRig = workload.MultiRig
	// TenantSpec configures one tenant of a MultiRig.
	TenantSpec = workload.TenantSpec
	// MultiRigOptions configures NewMultiRig.
	MultiRigOptions = workload.MultiOptions
	// TenantLoad describes one tenant's client streams for MultiRig.Run.
	TenantLoad = workload.TenantLoad
	// MultiPhaseResult is the outcome of one consolidated phase.
	MultiPhaseResult = workload.MultiPhaseResult
)

// Experiment platform types (internal/experiments): the registry of
// named, tagged, runnable scenarios — the paper's 13 artifacts are the
// first 13 registrations — with structured results and a parallel runner.
type (
	// Experiment is one runnable evaluation artifact:
	// Name / Describe / Run(ctx, Config, Observer).
	Experiment = experiments.Experiment
	// ExperimentConfig scales an experiment (SF, clients, seed, ...).
	ExperimentConfig = experiments.Config
	// ExperimentDescription documents an experiment (title, summary, tags).
	ExperimentDescription = experiments.Description
	// ExperimentRunFunc is an experiment body for NewExperiment.
	ExperimentRunFunc = experiments.RunFunc
	// Registry is a named, ordered collection of experiments.
	Registry = experiments.Registry
	// Result is the structured outcome of a run: named tables of typed
	// columns, scalar metrics, text artifacts and run metadata; it
	// renders to text, JSON and CSV.
	Result = experiments.Result
	// Runner executes a set of experiments concurrently with a worker
	// pool, honoring context cancellation and collecting per-experiment
	// errors.
	Runner = experiments.Runner
	// Report is one experiment's outcome within a Runner batch.
	Report = experiments.Report
	// Observer receives phase and progress callbacks from a running
	// experiment.
	Observer = experiments.Observer
)

// Experiments lists the default registry in registration order.
func Experiments() []Experiment { return experiments.All() }

// LookupExperiment finds a registered experiment by name.
func LookupExperiment(name string) (Experiment, bool) { return experiments.Lookup(name) }

// ExperimentsWithTag filters the default registry by tag.
func ExperimentsWithTag(tag string) []Experiment { return experiments.WithTag(tag) }

// NewExperiment builds an Experiment from a name, a description and a run
// function; RegisterExperiment adds it to the default registry.
func NewExperiment(name string, desc ExperimentDescription, run ExperimentRunFunc) Experiment {
	return experiments.New(name, desc, run)
}

// RegisterExperiment adds an experiment to the default registry (panics
// on a duplicate name, mirroring init-time registration).
func RegisterExperiment(e Experiment) { experiments.Register(e) }

// Modes re-exported for rig construction.
const (
	ModeOS       = workload.ModeOS
	ModeDense    = workload.ModeDense
	ModeSparse   = workload.ModeSparse
	ModeAdaptive = workload.ModeAdaptive
)

// Opteron8387 returns the paper's testbed topology: four quad-core
// sockets at 2.8 GHz with 6 MB shared L3s and HyperTransport 3.x links.
func Opteron8387() *Topology { return numa.Opteron8387() }

// The topology zoo: machine shapes beyond the paper's testbed, for
// exercising the mechanism across interconnect geometries.

// TwoSocket returns a dual-socket machine (two 8-core nodes, one link).
func TwoSocket() *Topology { return numa.TwoSocket() }

// FourSocketRing returns four quad-core sockets on a ring interconnect
// (diagonal sockets two hops apart).
func FourSocketRing() *Topology { return numa.FourSocketRing() }

// EightSocketTwisted returns the real eight-socket Opteron's
// twisted-ladder interconnect: 3-regular, diameter two.
func EightSocketTwisted() *Topology { return numa.EightSocketTwisted() }

// EPYCLike returns a chiplet-style machine: two packages of four dies
// with asymmetric intra-package and cross-package hop distances.
func EPYCLike() *Topology { return numa.EPYCLike() }

// ParseTopology resolves a machine shape from a zoo name ("opteron",
// "2socket", "4ring", "8twisted", "epyc") or a
// "nodes x cores [@ hops...]" spec; see internal/numa.ParseTopology for
// the grammar.
func ParseTopology(spec string) (*Topology, error) { return numa.ParseTopology(spec) }

// TopologyZooNames lists the zoo's canonical names.
func TopologyZooNames() []string { return numa.ZooNames() }

// ScaleTopology shrinks a base topology's caches and bandwidths
// proportionally to the TPC-H scale factor, preserving the paper's
// data-to-cache operating point at small SF (see workload.ScaledTopology).
func ScaleTopology(t *Topology, sf float64) *Topology { return workload.ScaleTopology(t, sf) }

// NewRig builds a complete experiment environment: a machine, an OS
// scheduler, a TPC-H-loaded store, a database engine inside a cgroup and
// (unless ModeOS) the elastic mechanism steering that cgroup.
func NewRig(opts RigOptions) (*Rig, error) { return workload.NewRig(opts) }

// NewMultiRig builds a multi-tenant environment: one machine and OS
// scheduler shared by N tenant databases — each with its own TPC-H
// dataset, engine, cgroup and elastic mechanism — consolidated under the
// core arbiter.
func NewMultiRig(opts MultiRigOptions) (*MultiRig, error) {
	return workload.NewMultiRig(opts)
}

// BuildQuery returns the plan of TPC-H query n (1..22) with seed-derived
// parameters.
func BuildQuery(n int, seed uint64) *Plan { return tpch.Build(n, seed) }

// QueryCount is the number of TPC-H queries provided.
const QueryCount = tpch.QueryCount
