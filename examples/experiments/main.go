// Command experiments demonstrates the experiment platform: enumerate the
// registry, run a batch concurrently with a Runner and an Observer, and
// render one structured Result as JSON.
package main

import (
	"context"
	"fmt"
	"os"

	"elasticore"
)

func main() {
	// The registry: the paper's 13 artifacts are the first registrations.
	fmt.Println("registered experiments:")
	for _, e := range elasticore.Experiments() {
		fmt.Printf("  %-14s %s\n", e.Name(), e.Describe().Title)
	}

	// Run two experiments concurrently at a tiny scale factor, streaming
	// phase events to stderr.
	runner := &elasticore.Runner{
		Parallel: 2,
		Config:   elasticore.ExperimentConfig{SF: 0.002, Clients: 8, Users: []int{1, 4}},
		Observe: func(name string) elasticore.Observer {
			return &obs{name: name}
		},
	}
	fig4, _ := elasticore.LookupExperiment("fig4")
	overhead, _ := elasticore.LookupExperiment("overhead")
	reports := runner.Run(context.Background(), fig4, overhead)

	for _, rep := range reports {
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", rep.Name, rep.Err)
			continue
		}
		fmt.Printf("\n%s finished in %s\n", rep.Name, rep.Elapsed.Round(1e6))
	}

	// A Result renders to text, JSON or CSV; JSON keeps the table schema.
	if reports[0].Result != nil {
		fmt.Println("\nfig4 as JSON:")
		reports[0].Result.WriteJSON(os.Stdout)
	}
}

// obs prints phase events, prefixed with the experiment name.
type obs struct{ name string }

func (o *obs) PhaseStart(phase string) { fmt.Fprintf(os.Stderr, "%s: %s ...\n", o.name, phase) }
func (o *obs) PhaseDone(phase string)  { fmt.Fprintf(os.Stderr, "%s: %s done\n", o.name, phase) }
func (o *obs) Progress(done, total int) {
	fmt.Fprintf(os.Stderr, "%s: %d/%d\n", o.name, done, total)
}
