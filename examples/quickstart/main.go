// Quickstart: build a complete rig — simulated Opteron NUMA machine, OS
// scheduler, TPC-H-loaded columnar engine, cgroup — attach the elastic
// mechanism in adaptive mode, run TPC-H Q6 with concurrent clients, and
// print the result, the allocation timeline and the NUMA-friendliness
// metrics.
package main

import (
	"fmt"
	"log"

	"elasticore"
)

func main() {
	// A rig wires the whole system; ModeAdaptive attaches the mechanism
	// with the adaptive priority allocation mode and CPU-load strategy.
	rig, err := elasticore.NewRig(elasticore.RigOptions{
		SF:   0.005,
		Mode: elasticore.ModeAdaptive,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Run 16 concurrent clients, each executing TPC-H Q6 twice.
	driver := &elasticore.Driver{Rig: rig, QueriesPerClient: 2}
	res := driver.Run(16, func(client, k int) *elasticore.Plan {
		return elasticore.BuildQuery(6, uint64(client*100+k+1))
	})

	fmt.Printf("completed %d queries in %.3f virtual seconds (%.1f q/s)\n",
		res.Completed, res.ElapsedSeconds, res.Throughput)
	fmt.Printf("mean latency: %.4fs\n", res.MeanLatencySeconds)
	fmt.Printf("HT/IMC ratio: %.3f (smaller = more NUMA-friendly)\n", res.Window.HTIMCRatio())
	fmt.Printf("stolen tasks: %d, cross-node migrations: %d\n",
		res.Sched.StolenTasks, res.Sched.CrossNodeMigrations)

	// The mechanism's state transitions (paper Figure 7).
	events := rig.Mech.Events()
	fmt.Printf("\n%d control periods; last transitions:\n", len(events))
	start := len(events) - 8
	if start < 0 {
		start = 0
	}
	topo := rig.Machine.Topology()
	for _, e := range events[start:] {
		fmt.Printf("  t=%.4fs %-18s u=%3d cores=%d\n",
			topo.CyclesToSeconds(e.Now), e.Label, e.U, e.NAlloc)
	}
	fmt.Printf("\nfinal cpuset handed to the OS: %s\n", rig.CGroup.CPUs())
}
