// Topology zoo: run the same elastic workload on machine shapes beyond
// the paper's testbed — a dual-socket server, a four-socket ring, the
// real 8-socket Opteron twisted ladder, a chiplet-style package — under
// each topology-aware core placement policy, and compare the Section V-B
// NUMA-friendliness metric (HT/IMC traffic ratio; smaller is better).
// Also shows defining a custom shape from a textual spec.
package main

import (
	"fmt"
	"log"

	"elasticore"
)

func main() {
	const sf = 0.005

	shapes := []struct {
		name string
		topo *elasticore.Topology
	}{
		{"2socket", elasticore.TwoSocket()},
		{"4ring", elasticore.FourSocketRing()},
		{"8twisted", elasticore.EightSocketTwisted()},
		{"epyc", elasticore.EPYCLike()},
	}

	fmt.Println("topology   placement  cores  q/s      ht/imc")
	for _, s := range shapes {
		for _, p := range elasticore.Placements() {
			run(s.name, s.topo, p, sf)
		}
	}

	// A custom shape straight from a spec: three 5-core nodes on a
	// line — the middle node one hop from both ends, the ends two
	// hops from each other.
	custom, err := elasticore.ParseTopology("3x5 @ 1 2 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	run("3x5-line", custom, elasticore.NodeFillPlacement(), sf)
}

// run drives 16 concurrent clients, each one TPC-H Q6, on a fresh rig
// over the given shape and placement, then prints one summary line.
func run(name string, topo *elasticore.Topology, p elasticore.Placement, sf float64) {
	rig, err := elasticore.NewRig(elasticore.RigOptions{
		SF:            sf,
		Topology:      elasticore.ScaleTopology(topo, sf),
		CorePlacement: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	driver := &elasticore.Driver{Rig: rig, QueriesPerClient: 1}
	res := driver.Run(16, func(client, k int) *elasticore.Plan {
		return elasticore.BuildQuery(6, uint64(client+1))
	})
	fmt.Printf("%-10s %-10s %5d  %7.1f  %.3f\n",
		name, p.Name(), rig.Machine.Topology().TotalCores(),
		res.Throughput, res.Window.HTIMCRatio())
}
