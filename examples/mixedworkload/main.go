// Mixedworkload: the Figure 19 scenario — all 22 TPC-H queries with
// randomized parameters under concurrent clients, comparing the adaptive
// mode's per-query latency and HT/IMC ratio against the OS scheduler.
package main

import (
	"fmt"
	"log"

	"elasticore"
)

const (
	sf      = 0.005
	clients = 16
)

func runAll(mode elasticore.Mode) (lat [elasticore.QueryCount]float64, ratio [elasticore.QueryCount]float64) {
	rig, err := elasticore.NewRig(elasticore.RigOptions{SF: sf, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	for qn := 1; qn <= elasticore.QueryCount; qn++ {
		qn := qn
		d := &elasticore.Driver{Rig: rig, QueriesPerClient: 1}
		res := d.Run(clients, func(client, k int) *elasticore.Plan {
			return elasticore.BuildQuery(qn, uint64(qn*1000+client))
		})
		lat[qn-1] = res.MeanLatencySeconds
		ratio[qn-1] = res.Window.HTIMCRatio()
	}
	return lat, ratio
}

func main() {
	osLat, osRatio := runAll(elasticore.ModeOS)
	adLat, adRatio := runAll(elasticore.ModeAdaptive)

	fmt.Printf("%-5s %12s %12s %9s %9s %9s\n",
		"query", "OS lat(s)", "adp lat(s)", "speedup", "OS ratio", "adp ratio")
	var best float64
	for i := 0; i < elasticore.QueryCount; i++ {
		speedup := 0.0
		if adLat[i] > 0 {
			speedup = osLat[i] / adLat[i]
		}
		if speedup > best {
			best = speedup
		}
		fmt.Printf("Q%-4d %12.4f %12.4f %9.2f %9.3f %9.3f\n",
			i+1, osLat[i], adLat[i], speedup, osRatio[i], adRatio[i])
	}
	fmt.Printf("\nbest per-query speedup: %.2fx\n", best)
}
