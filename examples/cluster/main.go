// Cluster: scale the elastic mechanism out — a fleet of four simulated
// machines shares one sharded TPC-H dataset behind a coordinator that
// routes keyed queries to their shard's owner and fans every eighth
// request out to all machines, merging the partial results. A cluster
// arbiter arbitrates a core budget below the fleet's physical capacity,
// moving whole cores between machines at an explicit migration cost
// while a hot shard shifts from the first machine to the last.
package main

import (
	"fmt"
	"log"

	"elasticore"
)

func main() {
	fleet, err := elasticore.NewFleet(elasticore.FleetOptions{
		Machines: 4,
		Shards:   8,
		SF:       0.004, // total dataset; each machine loads its owned 1/4
		Seed:     7,
		Mode:     elasticore.ModeAdaptive,
	})
	if err != nil {
		log.Fatal(err)
	}
	sh := fleet.Sharder
	fmt.Printf("fleet: %d machines x %s, %d shards\n",
		fleet.Machines(), fleet.Rigs[0].Machine.Topology(), sh.Shards())

	// 40 of the fleet's 64 physical cores are granted at any moment; the
	// rest is headroom the arbiter shifts toward whichever machines the
	// per-machine mechanisms report as overloaded.
	ca, err := elasticore.NewClusterArbiter(elasticore.ClusterArbiterConfig{
		Fleet:  fleet,
		Budget: 40,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The key stream concentrates on machine 0's first shard for the
	// first half of the run, then jumps to the last machine's — a moving
	// hot spot the cluster tier has to follow.
	const total = 320
	hotA, _ := sh.ShardsOf(0)
	hotB, _ := sh.ShardsOf(fleet.Machines() - 1)
	coord := &elasticore.Coordinator{
		Fleet:   fleet,
		Process: elasticore.PoissonArrivals(3000, 42),
		Keys: func(k int) uint64 {
			hot := hotA
			if k >= total/2 {
				hot = hotB
			}
			return sh.KeyForShard(hot, uint64(k))
		},
		ScatterEvery: 8,
		MaxInFlight:  4,
		MaxArrivals:  total,
		MaxSeconds:   10,
	}
	res := coord.Run()

	topo := fleet.Rigs[0].Machine.Topology()
	ms := func(cycles uint64) float64 { return topo.CyclesToSeconds(cycles) * 1e3 }
	fmt.Printf("offered %d (keyed %d, scattered %d): completed %d, dropped %d in %.3fs (%.1f q/s)\n",
		res.Offered, res.RoutedKeyed, res.Scattered, res.Completed, res.Dropped,
		res.ElapsedSeconds, res.Throughput)
	fmt.Printf("latency p50 %.2fms  p99 %.2fms; merged revenue %.2f\n",
		ms(res.Latency.P50()), ms(res.Latency.P99()), res.MergedScalars)

	fmt.Println("\nper machine (routed / completed / cores at end):")
	for m, st := range res.PerMachine {
		fmt.Printf("  machine %d: %4d routed  %4d completed  %2d cores\n",
			m, st.Routed, st.Completed, st.AllocatedEnd)
	}

	fmt.Printf("\ncluster arbiter: %d rounds, %d cores moved, %.2f Mcycles charged in transit\n",
		ca.Rounds, ca.MovedCores, float64(ca.ChargedCycles)/1e6)
	events := ca.Events()
	tail := events
	if len(tail) > 6 {
		tail = tail[len(tail)-6:]
	}
	fmt.Printf("%d rebalances; tail:\n", len(events))
	for _, e := range tail {
		fmt.Printf("  t=%.3fs machine %d %+d cores -> %d (migration %.2fms)\n",
			topo.CyclesToSeconds(e.Now), e.Machine, e.Delta, e.Target,
			topo.CyclesToSeconds(e.Latency)*1e3)
	}
}
