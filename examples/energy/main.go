// Energy: the Figure 20 scenario — estimate CPU and HyperTransport
// energy of a TPC-H stream under the OS scheduler versus the adaptive
// mechanism, using the paper's model (Average CPU Power per socket plus
// per-bit interconnect transfer energy).
package main

import (
	"fmt"
	"log"

	"elasticore"
	"elasticore/internal/metrics"
)

// measure runs the paper's protocol — each query as its own phase of
// concurrent clients with randomized parameters — and sums the energy
// estimate over all 22 phases.
func measure(mode elasticore.Mode) (metrics.Energy, float64) {
	rig, err := elasticore.NewRig(elasticore.RigOptions{SF: 0.005, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	model := metrics.DefaultEnergyModel()
	var total metrics.Energy
	var elapsed float64
	for qn := 1; qn <= elasticore.QueryCount; qn++ {
		qn := qn
		d := &elasticore.Driver{Rig: rig, QueriesPerClient: 1}
		res := d.Run(24, func(client, k int) *elasticore.Plan {
			return elasticore.BuildQuery(qn, uint64(qn*1000+client))
		})
		e := model.Estimate(rig.Machine.Topology(), res.Window)
		total.CPUJoules += e.CPUJoules
		total.HTJoules += e.HTJoules
		elapsed += res.ElapsedSeconds
	}
	return total, elapsed
}

func main() {
	osE, osT := measure(elasticore.ModeOS)
	adE, adT := measure(elasticore.ModeAdaptive)

	fmt.Printf("%-10s %12s %12s %12s %10s\n", "config", "CPU (J)", "HT (J)", "total (J)", "time (s)")
	fmt.Printf("%-10s %12.4f %12.4f %12.4f %10.4f\n", "OS", osE.CPUJoules, osE.HTJoules, osE.Total(), osT)
	fmt.Printf("%-10s %12.4f %12.4f %12.4f %10.4f\n", "adaptive", adE.CPUJoules, adE.HTJoules, adE.Total(), adT)
	fmt.Printf("\nCPU savings:   %6.2f%%\n", metrics.Savings(osE.CPUJoules, adE.CPUJoules))
	fmt.Printf("HT savings:    %6.2f%%\n", metrics.Savings(osE.HTJoules, adE.HTJoules))
	fmt.Printf("total savings: %6.2f%%\n", metrics.Savings(osE.Total(), adE.Total()))
}
