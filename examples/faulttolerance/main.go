// Faulttolerance: crash a machine out of a replicated fleet and watch
// the cluster survive it. A deterministic fault plan takes machine 1
// down mid-run; the coordinator's timeouts, retries, hedged requests
// and replica failover keep keyed traffic completing, the health
// monitor declares the machine dead from its heartbeat silence and
// re-homes its shards onto the surviving replicas, and when the crash
// window closes the recovered machine gets its shards back. Every run
// is bit-identical: faults are scheduled on the simulated clock, not
// sampled from it.
package main

import (
	"fmt"
	"log"

	"elasticore"
)

func main() {
	// Crash machine 1 from t=20ms to t=80ms. Plans parse from the same
	// grammar `elasticbench run -faults` accepts; slow cores and lossy
	// links compose into the same schedule.
	plan, err := elasticore.ParseFaultPlan("crash m1 @0.02s for 0.06s")
	if err != nil {
		log.Fatal(err)
	}

	fleet, err := elasticore.NewFleet(elasticore.FleetOptions{
		Machines: 4,
		Shards:   8,
		SF:       0.004,
		Seed:     7,
		Mode:     elasticore.ModeAdaptive,
		Replicas: 2, // every shard lives on its primary plus one successor
		Faults:   plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	topo := fleet.Rigs[0].Machine.Topology()

	// The health monitor turns heartbeat silence into death verdicts and
	// shard transfers; each transfer pays an explicit latency before the
	// surviving replica becomes the shard's primary.
	health, err := elasticore.NewHealthMonitor(elasticore.HealthConfig{
		Fleet:           fleet,
		HeartbeatEvery:  topo.SecondsToCycles(1e-3),
		TransferLatency: topo.SecondsToCycles(8e-3),
	})
	if err != nil {
		log.Fatal(err)
	}

	sh := fleet.Sharder
	coord := &elasticore.Coordinator{
		Fleet:   fleet,
		Process: elasticore.PoissonArrivals(1200, 42),
		Keys: func(k int) uint64 {
			return sh.KeyForShard(k%sh.Shards(), uint64(k))
		},
		MaxInFlight:       8,
		MaxArrivals:       320,
		MaxSeconds:        10,
		TimeoutSeconds:    10e-3, // an attempt unanswered for 10ms is retried
		BackoffSeconds:    2e-3,  // retry delay, doubled per attempt (capped)
		MaxRetries:        4,
		HedgeAfterSeconds: 5e-3, // duplicate slow keyed requests to a replica
	}
	res := coord.Run()

	ms := func(cycles uint64) float64 { return topo.CyclesToSeconds(cycles) * 1e3 }
	fmt.Printf("offered %d: completed %d, dropped %d, failed %d, abandoned %d (%.1f q/s)\n",
		res.Offered, res.Completed, res.Dropped, res.Failed, res.Abandoned, res.Throughput)
	fmt.Printf("latency p50 %.2fms  p99 %.2fms\n", ms(res.Latency.P50()), ms(res.Latency.P99()))
	fmt.Printf("fault tolerance: %d retries, %d hedges, %d failovers, %d wire drops\n",
		res.Retried, res.Hedged, res.Failovers, res.WireDropped)
	fmt.Printf("health: %d deaths, %d recoveries, %d shard moves (%.2f Mcycles of transfer)\n",
		health.Deaths, health.Recoveries, health.Reassigned, float64(health.TransferCycles)/1e6)

	fmt.Println("\nshard placement after the run (primaries back home):")
	for shard := 0; shard < sh.Shards(); shard++ {
		fmt.Printf("  shard %d: home m%d, owner m%d\n", shard, sh.Home(shard), sh.Owner(shard))
	}
}
