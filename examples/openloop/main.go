// Openloop: drive a rig with open-loop traffic — queries arriving from a
// seeded Poisson process on their own schedule rather than in the
// paper's closed-loop lock step — then push the offered load through a
// bursty MMPP stream and watch the elastic mechanism react to the
// admission-queue backlog.
package main

import (
	"fmt"
	"log"

	"elasticore"
)

// runOpen replays one arrival process against a fresh rig and prints the
// admission counts and latency percentiles.
func runOpen(label string, mode elasticore.Mode, proc elasticore.ArrivalProcess) {
	rig, err := elasticore.NewRig(elasticore.RigOptions{SF: 0.002, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	driver := &elasticore.OpenDriver{
		Rig:         rig,
		Process:     proc,
		MaxInFlight: 16,  // concurrent server sessions
		QueueCap:    128, // arrivals beyond this are shed
		MaxArrivals: 200,
		MaxSeconds:  2,
		SampleEvery: 0.01,
	}
	res := driver.Run(func(k int) *elasticore.Plan {
		return elasticore.BuildQuery(6, uint64(k+1))
	})

	topo := rig.Machine.Topology()
	ms := func(cycles uint64) float64 { return topo.CyclesToSeconds(cycles) * 1e3 }
	fmt.Printf("%s:\n", label)
	fmt.Printf("  offered %d, admitted %d, dropped %d, completed %d in %.3fs (%.1f q/s)\n",
		res.Offered, res.Admitted, res.Dropped, res.Completed, res.ElapsedSeconds, res.Throughput)
	fmt.Printf("  latency p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		ms(res.Latency.P50()), ms(res.Latency.P90()), ms(res.Latency.P99()), ms(res.Latency.Max()))
	fmt.Printf("  queue wait p99 %.2fms, peak queue depth %d\n",
		ms(res.QueueWait.P99()), res.PeakQueueDepth)

	// The allocation timeline shows the mechanism tracking the traffic.
	if mode != elasticore.ModeOS {
		fmt.Print("  cores over time:")
		for _, s := range res.Samples {
			fmt.Printf(" %d", s.Allocated)
		}
		fmt.Println()
	}
	fmt.Println()
}

func main() {
	// The SF 0.002 rig saturates near 750 Q6/s under 16 sessions; offer
	// half of that, then a bursty stream that overshoots it.
	runOpen("steady poisson at half saturation (static cores)",
		elasticore.ModeOS, elasticore.PoissonArrivals(375, 42))
	runOpen("mmpp bursts, elastic allocation with backlog signal",
		elasticore.ModeAdaptive, elasticore.MMPPArrivals(225, 1350, 0.04, 0.027, 42))
}
