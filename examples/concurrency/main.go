// Concurrency: the Figure 4 / Figure 13 scenario — TPC-H Q6 under an
// increasing number of concurrent clients, comparing the plain OS
// scheduler against the mechanism's three allocation modes. Shows the
// throughput and interconnect-traffic crossover the paper's introduction
// motivates.
package main

import (
	"fmt"
	"log"

	"elasticore"
)

func main() {
	users := []int{1, 4, 16, 64}
	modes := []elasticore.Mode{
		elasticore.ModeOS, elasticore.ModeDense,
		elasticore.ModeSparse, elasticore.ModeAdaptive,
	}

	fmt.Printf("%-10s %6s %10s %10s %10s %8s\n",
		"mode", "users", "q/s", "HT MB/s", "cpu %", "stolen")
	for _, u := range users {
		for _, mode := range modes {
			rig, err := elasticore.NewRig(elasticore.RigOptions{
				SF:   0.005,
				Mode: mode,
			})
			if err != nil {
				log.Fatal(err)
			}
			d := &elasticore.Driver{Rig: rig, QueriesPerClient: 1}
			res := d.Run(u, func(client, k int) *elasticore.Plan {
				return elasticore.BuildQuery(6, uint64(client+1))
			})
			htMBs := 0.0
			if res.ElapsedSeconds > 0 {
				htMBs = float64(res.Window.TotalHTBytes()) / res.ElapsedSeconds / 1e6
			}
			fmt.Printf("%-10s %6d %10.1f %10.2f %10.1f %8d\n",
				mode, u, res.Throughput, htMBs,
				res.Window.CPULoad(nil), res.Sched.StolenTasks)
		}
	}
}
