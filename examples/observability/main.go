// Observability: light up the telemetry bus on a rig, subscribe live
// counters while the run executes, sample the probe timeline at control
// periods, and export the retained event window as a Chrome/Perfetto
// trace (open it at ui.perfetto.dev). The bus is pure observation —
// attaching it changes nothing about the simulation's outcome.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"elasticore"
)

func main() {
	// One bus serves every producer of the rig: the scheduler publishes
	// run slices and migrations, the engine task completions, the
	// mechanism its transitions. Capacity 0 selects the default ring.
	bus := elasticore.NewBus(0)

	// Live subscribers see each event as it is published, in the
	// simulation's deterministic order.
	var migrations int
	bus.Subscribe(elasticore.KindMigration, func(e elasticore.Event) {
		migrations++
	})
	transitions := 0
	bus.Subscribe(elasticore.KindTransition, func(e elasticore.Event) {
		transitions++
	})

	rig, err := elasticore.NewRig(elasticore.RigOptions{
		SF:   0.002,
		Mode: elasticore.ModeAdaptive,
		Bus:  bus,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The probe snapshots allocation, load, backlog, memory traffic,
	// energy and latency quantiles once per control period.
	probe := rig.EnableProbe(0)

	driver := &elasticore.Driver{Rig: rig, QueriesPerClient: 2}
	res := driver.Run(16, func(client, k int) *elasticore.Plan {
		return elasticore.BuildQuery(6, uint64(client*100+k+1))
	})

	fmt.Printf("completed %d queries in %.3f virtual seconds (%.1f q/s)\n",
		res.Completed, res.ElapsedSeconds, res.Throughput)
	fmt.Printf("live subscribers saw %d migrations, %d elastic transitions\n",
		migrations, transitions)
	fmt.Printf("bus retained %d of %d published events (ring drops the oldest)\n",
		bus.Len(), bus.Total())

	// The probe timeline is the data behind the paper's Figure 7 plots.
	topo := rig.Machine.Topology()
	fmt.Println("\nprobe timeline (one row per control period):")
	fmt.Printf("%-8s %5s %5s %8s %8s\n", "t(s)", "cores", "load", "ht(MB)", "energy(J)")
	for _, s := range probe.Samples() {
		fmt.Printf("%-8.4f %5d %5d %8.2f %8.3f\n",
			topo.CyclesToSeconds(s.Now), s.Allocated, s.Load,
			float64(s.HTBytes)/1e6, s.EnergyJoules)
	}

	// Export the retained window as a Perfetto trace. The example keeps
	// CI clean by writing to the temp directory.
	path := filepath.Join(os.TempDir(), "elasticore-observability.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := elasticore.WritePerfettoTrace(f, bus.Events()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d trace events to %s — open at ui.perfetto.dev\n", bus.Len(), path)
}
