// Multitenant: consolidate three tenant databases — gold, silver and
// bronze, each with its own TPC-H dataset, engine, cgroup and elastic
// mechanism — onto one simulated NUMA machine under the core arbiter.
// Every tenant is saturated so the aggregate demand exceeds the machine,
// and the arbiter divides cores by SLA weight with starvation floors,
// never over-committing. The program prints per-tenant throughput, the
// allocation statistics and the tail of the arbitration timeline.
package main

import (
	"fmt"
	"log"

	"elasticore"
)

func main() {
	rig, err := elasticore.NewMultiRig(elasticore.MultiRigOptions{
		Tenants: []elasticore.TenantSpec{
			{Name: "gold", SF: 0.004, Mode: elasticore.ModeDense,
				SLA: elasticore.SLA{Weight: 4, MinCores: 2}},
			{Name: "silver", SF: 0.004, Mode: elasticore.ModeAdaptive,
				SLA: elasticore.SLA{Weight: 2, MinCores: 1}},
			{Name: "bronze", SF: 0.004, Mode: elasticore.ModeSparse,
				SLA: elasticore.SLA{Weight: 1, MinCores: 1}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Saturate every tenant with a continuous Q6 stream for a fixed
	// window: 16 clients each, resubmitting as soon as a query finishes.
	q6 := func(client, k int) *elasticore.Plan {
		return elasticore.BuildQuery(6, uint64(client*1000+k+1))
	}
	loads := []elasticore.TenantLoad{
		{Clients: 16, QueriesPerClient: 1 << 20, Plan: q6},
		{Clients: 16, QueriesPerClient: 1 << 20, Plan: q6},
		{Clients: 16, QueriesPerClient: 1 << 20, Plan: q6},
	}
	res, err := rig.Run(loads, 0, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine: %s\n", rig.Machine.Topology())
	fmt.Printf("phase: %.3f virtual seconds, peak total allocation %d/%d cores\n\n",
		res.ElapsedSeconds, res.PeakTotalCores, res.MachineCores)
	for i, tr := range res.Tenants {
		sla := rig.Tenants[i].SLA
		fmt.Printf("%-7s weight=%d floor=%d  %8.1f q/s  cores mean=%.2f max=%d min=%d  cpuset=%s\n",
			tr.Tenant, sla.Weight, sla.MinCores, tr.Throughput,
			tr.MeanCores, tr.MaxCores, tr.MinCores, rig.Tenants[i].Allocated())
	}

	// The tail of the allocation timeline: demand vs grant per tenant,
	// recorded whenever a tenant's demand, grant or cpuset changed.
	events := rig.Arbiter.Events()
	fmt.Printf("\n%d allocation changes over %d rounds; tail:\n", len(events), rig.Arbiter.Rounds)
	start := len(events) - 9
	if start < 0 {
		start = 0
	}
	topo := rig.Machine.Topology()
	for _, e := range events[start:] {
		fmt.Printf("  t=%.4fs %-7s demand=%2d grant=%2d cpuset=%s\n",
			topo.CyclesToSeconds(e.Now), e.Tenant, e.Demand, e.Grant, e.Set)
	}
}
