package main

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"elasticore/internal/experiments"
)

// main_test.go pins the CLI's exit-status contract: `elasticbench run`
// must fail (main exits non-zero) when ANY experiment in the batch
// errors, even though per-experiment errors are reported individually
// and the rest of the batch keeps running.

func init() {
	experiments.Register(experiments.New("test-always-fails", experiments.Description{
		Title:   "test fixture",
		Summary: "always returns an error",
		Tags:    []string{"test"},
	}, func(ctx context.Context, c experiments.Config, obs experiments.Observer) (*experiments.Result, error) {
		return nil, fmt.Errorf("intentional failure")
	}))
	experiments.Register(experiments.New("test-always-succeeds", experiments.Description{
		Title:   "test fixture",
		Summary: "always succeeds",
		Tags:    []string{"test"},
	}, func(ctx context.Context, c experiments.Config, obs experiments.Observer) (*experiments.Result, error) {
		return &experiments.Result{}, nil
	}))
}

func quietRunFlags(t *testing.T) *runFlags {
	t.Helper()
	return &runFlags{format: "text", out: t.TempDir(), parallel: 1}
}

// TestExecuteFailsWhenAnyExperimentErrors: one failure in a batch of two
// must surface as a non-nil error from execute (which main turns into
// exit status 1), naming how many failed.
func TestExecuteFailsWhenAnyExperimentErrors(t *testing.T) {
	err := execute([]string{"test-always-succeeds", "test-always-fails"}, quietRunFlags(t))
	if err == nil {
		t.Fatal("batch with a failing experiment returned nil error (process would exit 0)")
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Errorf("error %q does not report the failure count", err)
	}
}

// TestExecuteAllFailuresStillErrors: the all-failed batch must not be
// mistaken for an empty success.
func TestExecuteAllFailuresStillErrors(t *testing.T) {
	err := execute([]string{"test-always-fails"}, quietRunFlags(t))
	if err == nil || !strings.Contains(err.Error(), "1 of 1") {
		t.Errorf("all-failing batch: err = %v, want '1 of 1 experiments failed'", err)
	}
}

// TestExecuteSucceedsCleanly: a healthy batch returns nil, so the
// process exits 0 only when every experiment ran and rendered.
func TestExecuteSucceedsCleanly(t *testing.T) {
	if err := execute([]string{"test-always-succeeds"}, quietRunFlags(t)); err != nil {
		t.Errorf("healthy batch errored: %v", err)
	}
}

// TestExecuteRejectsUnknownNamesBeforeRunning: typos fail fast.
func TestExecuteRejectsUnknownNamesBeforeRunning(t *testing.T) {
	err := execute([]string{"no-such-experiment"}, quietRunFlags(t))
	if err == nil || !strings.Contains(err.Error(), "no-such-experiment") {
		t.Errorf("unknown name: err = %v, want mention of the name", err)
	}
}

// TestApplyEngineParsesLoads covers the open-loop flag plumbing.
func TestApplyEngineParsesLoads(t *testing.T) {
	rf := &runFlags{loads: "0.5, 1, 2.5"}
	if err := rf.applyEngine("monetdb"); err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1, 2.5}
	if len(rf.cfg.Loads) != len(want) {
		t.Fatalf("parsed %v, want %v", rf.cfg.Loads, want)
	}
	for i := range want {
		if rf.cfg.Loads[i] != want[i] {
			t.Errorf("loads[%d] = %g, want %g", i, rf.cfg.Loads[i], want[i])
		}
	}
	bad := &runFlags{loads: "0.5,abc"}
	if err := bad.applyEngine("monetdb"); err == nil {
		t.Error("malformed -loads accepted")
	}
}

// TestTopologyFlagFailsFast: a malformed -topology must fail the batch
// before any experiment runs (central Config validation), and the error
// must surface the offending spec.
func TestTopologyFlagFailsFast(t *testing.T) {
	rf := quietRunFlags(t)
	rf.cfg.Topology = "4x4 @ 1 2"
	err := execute([]string{"test-always-succeeds"}, rf)
	if err == nil {
		t.Fatal("malformed -topology spec accepted")
	}
}

// TestMachinesFlagFailsFast: a negative -machines must fail the batch
// before any experiment runs (central Config validation), turning into
// a non-zero exit status.
func TestMachinesFlagFailsFast(t *testing.T) {
	rf := quietRunFlags(t)
	rf.cfg.Machines = -1
	if err := execute([]string{"test-always-succeeds"}, rf); err == nil {
		t.Fatal("-machines -1 accepted")
	}
}

// TestShardsFlagFailsFast: fewer shards than machines would leave
// machines without data; the batch must fail up front.
func TestShardsFlagFailsFast(t *testing.T) {
	rf := quietRunFlags(t)
	rf.cfg.Machines = 4
	rf.cfg.Shards = 2
	if err := execute([]string{"test-always-succeeds"}, rf); err == nil {
		t.Fatal("-machines 4 -shards 2 accepted")
	}
}

// TestMachinesFlagRunsFleet: the flags reach the cluster experiments —
// a 2-machine scale-out runs end to end.
func TestMachinesFlagRunsFleet(t *testing.T) {
	rf := quietRunFlags(t)
	rf.cfg.SF = 0.002
	rf.cfg.Clients = 4
	rf.cfg.Seed = 7
	rf.cfg.OpenArrivals = 20
	rf.cfg.Machines = 2
	if err := execute([]string{"scale-out"}, rf); err != nil {
		t.Fatalf("scale-out on 2 machines failed: %v", err)
	}
}

// TestFaultsFlagFailsFast: a malformed -faults plan must fail the batch
// before any experiment runs (central Config validation).
func TestFaultsFlagFailsFast(t *testing.T) {
	rf := quietRunFlags(t)
	rf.cfg.Faults = "explode m0 @1s"
	if err := execute([]string{"test-always-succeeds"}, rf); err == nil {
		t.Fatal("malformed -faults plan accepted")
	}
}

// TestReplicasFlagFailsFast: more replicas than machines cannot place
// distinct shard copies; the batch must fail up front.
func TestReplicasFlagFailsFast(t *testing.T) {
	rf := quietRunFlags(t)
	rf.cfg.Machines = 2
	rf.cfg.Replicas = 3
	if err := execute([]string{"test-always-succeeds"}, rf); err == nil {
		t.Fatal("-machines 2 -replicas 3 accepted")
	}
}

// TestFaultsFlagRunsFaultedFleet: a crash plan from the flag reaches the
// fleet — a replicated 2-machine fault-tolerance run survives end to end.
func TestFaultsFlagRunsFaultedFleet(t *testing.T) {
	rf := quietRunFlags(t)
	rf.cfg.SF = 0.002
	rf.cfg.Clients = 4
	rf.cfg.Seed = 7
	rf.cfg.OpenArrivals = 20
	rf.cfg.Machines = 2
	rf.cfg.Replicas = 2
	rf.cfg.Faults = "crash m1 @0.01s for 0.03s"
	if err := execute([]string{"fault-tolerance"}, rf); err != nil {
		t.Fatalf("faulted fault-tolerance run failed: %v", err)
	}
}

// TestTopologyFlagAcceptsZooNames: a named shape runs a real experiment
// end to end on the selected machine.
func TestTopologyFlagAcceptsZooNames(t *testing.T) {
	rf := quietRunFlags(t)
	rf.cfg.SF = 0.002
	rf.cfg.Clients = 4
	rf.cfg.Users = []int{1}
	rf.cfg.Topology = "2socket"
	if err := execute([]string{"fig4"}, rf); err != nil {
		t.Fatalf("fig4 on 2socket failed: %v", err)
	}
}
