package main

// bench.go implements `elasticbench bench`: a fixed, pinned experiment
// suite timed under the default fast simulator paths AND under the naive
// paths of the seed implementation (walk-every-core tick loop, per-block
// memory charging, uncached dataset generation). It reports wall time,
// simulated-cycles/second and heap allocations per run, verifies the two
// paths render bit-identical results, and writes a machine-readable
// BENCH_<n>.json so later PRs have a perf trajectory to regress against.
//
//	elasticbench bench                         # full + quick tiers
//	elasticbench bench -quick                  # quick tier only (CI)
//	elasticbench bench -out BENCH_3.json
//	elasticbench bench -quick -baseline BENCH_3.json -max-regress 2
//	elasticbench bench -skip-naive             # fast paths only

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"time"

	"elasticore/internal/arrivals"
	"elasticore/internal/cluster"
	"elasticore/internal/experiments"
	"elasticore/internal/hashmix"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/workload"
)

// benchEntry is one pinned suite point.
type benchEntry struct {
	Name string
	Tier string // "full" or "quick"
	Cfg  experiments.Config
}

// benchSuite returns the fixed suite. The configs are pinned — changing
// them invalidates baseline comparisons, so bump the BENCH file number
// when they move.
func benchSuite() []benchEntry {
	return []benchEntry{
		{"fig4", "quick", experiments.Config{SF: 0.002, Clients: 8, Users: []int{1, 4}, Seed: 1}},
		{"fig19", "quick", experiments.Config{SF: 0.002, Clients: 8, Seed: 1}},
		{"consolidation", "quick", experiments.Config{SF: 0.002, Clients: 8, Seed: 1, Tenants: 2}},
		{"fig4", "full", experiments.Config{SF: 0.005, Clients: 32, Users: []int{1, 4, 16, 64}, Seed: 1}},
		{"fig19", "full", experiments.Config{SF: 0.005, Clients: 32, Seed: 1}},
		{"consolidation", "full", experiments.Config{SF: 0.005, Clients: 32, Seed: 1, Tenants: 3}},
	}
}

// benchMeasurement is one timed run of one entry on one path.
type benchMeasurement struct {
	WallSeconds        float64 `json:"wall_seconds"`
	SimCycles          uint64  `json:"sim_cycles"`
	SimCyclesPerSecond float64 `json:"sim_cycles_per_second"`
	Allocs             uint64  `json:"allocs"`
}

// benchRecord is one suite entry's result pair.
type benchRecord struct {
	Name            string            `json:"name"`
	Tier            string            `json:"tier"`
	Config          benchConfigJSON   `json:"config"`
	Fast            benchMeasurement  `json:"fast"`
	Naive           *benchMeasurement `json:"naive,omitempty"`
	Speedup         float64           `json:"speedup,omitempty"`
	IdenticalOutput *bool             `json:"identical_output,omitempty"`
}

// benchConfigJSON pins the entry's operating point in the report.
type benchConfigJSON struct {
	SF      float64 `json:"sf"`
	Clients int     `json:"clients"`
	Users   []int   `json:"users,omitempty"`
	Seed    uint64  `json:"seed"`
	Tenants int     `json:"tenants,omitempty"`
}

// benchFleetEntry pins one fleet operating point: the scale-out shape —
// one fixed keyed stream whose rate and arrival count do not depend on
// fleet size, against a fleet storing one fixed total dataset.
type benchFleetEntry struct {
	Name     string
	Tier     string
	Machines int
	SF       float64 // total scale factor, split across the fleet
	Arrivals int
	Rate     float64
}

// benchFleetSuite returns the pinned fleet points: the same operating
// point at 1 and 16 machines, so the pair reads as "what does spreading
// the fixed workload over a fleet cost in wall-clock".
func benchFleetSuite() []benchFleetEntry {
	return []benchFleetEntry{
		{"fleet-1", "quick", 1, 0.008, 240, 4000},
		{"fleet-16", "quick", 16, 0.008, 240, 4000},
		{"fleet-1", "full", 1, 0.016, 640, 4000},
		{"fleet-16", "full", 16, 0.016, 640, 4000},
	}
}

// benchFleetRecord is one fleet point measured under both engines: the
// sequential Tick loop (workers 1) and the parallel epoch-barrier engine
// at Workers goroutines. IdenticalOutput gates the engines' equivalence:
// the run summary (including an order-sensitive hash of the full bus
// event stream) must match byte for byte.
type benchFleetRecord struct {
	Name            string           `json:"name"`
	Tier            string           `json:"tier"`
	Machines        int              `json:"machines"`
	Workers         int              `json:"workers"`
	Sequential      benchMeasurement `json:"sequential"`
	Parallel        benchMeasurement `json:"parallel"`
	Speedup         float64          `json:"speedup,omitempty"`
	IdenticalOutput *bool            `json:"identical_output,omitempty"`
}

// benchReport is the BENCH_<n>.json document.
type benchReport struct {
	Schema  int                `json:"schema"`
	Suite   string             `json:"suite"`
	Entries []benchRecord      `json:"entries"`
	Fleet   []benchFleetRecord `json:"fleet,omitempty"`
	Totals  struct {
		FastWallSeconds  float64 `json:"fast_wall_seconds"`
		NaiveWallSeconds float64 `json:"naive_wall_seconds,omitempty"`
		Speedup          float64 `json:"speedup,omitempty"`
	} `json:"totals"`
}

// cmdBench parses and executes `bench`.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "run only the quick tier (CI smoke)")
	out := fs.String("out", "", "write the JSON report to this file")
	baseline := fs.String("baseline", "", "compare fast wall times against this earlier report")
	maxRegress := fs.Float64("max-regress", 2.0, "fail when fast wall time exceeds baseline by this factor")
	minWall := fs.Float64("min-wall", 0.05, "ignore baseline entries faster than this many seconds (noise floor)")
	skipNaive := fs.Bool("skip-naive", false, "skip the naive-path runs (no speedup column)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("bench takes no positional arguments")
	}

	report := benchReport{Schema: 2, Suite: "elasticore-bench"}
	for _, e := range benchSuite() {
		if *quick && e.Tier != "quick" {
			continue
		}
		rec, err := runBenchEntry(e, !*skipNaive)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", e.Name, e.Tier, err)
		}
		report.Entries = append(report.Entries, rec)
		report.Totals.FastWallSeconds += rec.Fast.WallSeconds
		if rec.Naive != nil {
			report.Totals.NaiveWallSeconds += rec.Naive.WallSeconds
		}
		printBenchRecord(rec)
	}
	for _, e := range benchFleetSuite() {
		if *quick && e.Tier != "quick" {
			continue
		}
		rec, err := runFleetEntry(e)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", e.Name, e.Tier, err)
		}
		report.Fleet = append(report.Fleet, rec)
		printFleetRecord(rec)
	}
	if report.Totals.NaiveWallSeconds > 0 && report.Totals.FastWallSeconds > 0 {
		report.Totals.Speedup = report.Totals.NaiveWallSeconds / report.Totals.FastWallSeconds
		fmt.Printf("total: fast %.2fs, naive %.2fs, speedup %.2fx\n",
			report.Totals.FastWallSeconds, report.Totals.NaiveWallSeconds, report.Totals.Speedup)
	} else {
		fmt.Printf("total: fast %.2fs\n", report.Totals.FastWallSeconds)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
	}
	if *baseline != "" {
		if err := checkBaseline(report, *baseline, *maxRegress, *minWall); err != nil {
			return err
		}
	}
	return nil
}

// runBenchEntry times one suite entry on the fast path and, optionally,
// the naive path, verifying the rendered outputs match bit for bit.
func runBenchEntry(e benchEntry, withNaive bool) (benchRecord, error) {
	rec := benchRecord{
		Name: e.Name,
		Tier: e.Tier,
		Config: benchConfigJSON{
			SF: e.Cfg.SF, Clients: e.Cfg.Clients, Users: e.Cfg.Users,
			Seed: e.Cfg.Seed, Tenants: e.Cfg.Tenants,
		},
	}
	fast, fastOut, err := measureRun(e.Name, e.Cfg, false)
	if err != nil {
		return rec, err
	}
	rec.Fast = fast
	if !withNaive {
		return rec, nil
	}
	naive, naiveOut, err := measureRun(e.Name, e.Cfg, true)
	if err != nil {
		return rec, err
	}
	rec.Naive = &naive
	if fast.WallSeconds > 0 {
		rec.Speedup = naive.WallSeconds / fast.WallSeconds
	}
	identical := bytes.Equal(fastOut, naiveOut)
	rec.IdenticalOutput = &identical
	if !identical {
		return rec, fmt.Errorf("fast and naive paths rendered different results — equivalence broken")
	}
	return rec, nil
}

// measureRun executes one registered experiment and samples wall time,
// the simulated-cycle counter and the allocation counter around it.
func measureRun(name string, cfg experiments.Config, naive bool) (benchMeasurement, []byte, error) {
	exp, ok := experiments.Lookup(name)
	if !ok {
		return benchMeasurement{}, nil, fmt.Errorf("experiment %q not registered", name)
	}
	cfg.Naive = naive
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	cyclesBefore := numa.SimulatedCycles()
	start := time.Now()
	res, err := exp.Run(context.Background(), cfg, nil)
	if err != nil {
		return benchMeasurement{}, nil, err
	}
	wall := time.Since(start).Seconds()
	cycles := numa.SimulatedCycles() - cyclesBefore
	runtime.ReadMemStats(&msAfter)

	m := benchMeasurement{
		WallSeconds: wall,
		SimCycles:   cycles,
		Allocs:      msAfter.Mallocs - msBefore.Mallocs,
	}
	if wall > 0 {
		m.SimCyclesPerSecond = float64(cycles) / wall
	}
	// Normalized rendering for the fast-vs-naive equivalence check.
	res.Meta.WallTime = 0
	res.Meta.Version = "bench"
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		return benchMeasurement{}, nil, err
	}
	return m, buf.Bytes(), nil
}

// benchWorkers is the parallel worker count the fleet entries measure:
// NumCPU, floored at 2 so the parallel engine actually engages even on a
// single-core host (where the two goroutines simply interleave).
func benchWorkers() int {
	w := runtime.NumCPU()
	if w < 2 {
		w = 2
	}
	return w
}

// runFleetEntry measures one fleet point under the sequential engine and
// the parallel engine, and fails unless the two runs summarize — down to
// an order-sensitive hash of every bus event — byte-identically.
func runFleetEntry(e benchFleetEntry) (benchFleetRecord, error) {
	rec := benchFleetRecord{Name: e.Name, Tier: e.Tier, Machines: e.Machines, Workers: benchWorkers()}
	seq, seqOut, err := measureFleet(e, 1)
	if err != nil {
		return rec, err
	}
	rec.Sequential = seq
	par, parOut, err := measureFleet(e, rec.Workers)
	if err != nil {
		return rec, err
	}
	rec.Parallel = par
	if par.WallSeconds > 0 {
		rec.Speedup = seq.WallSeconds / par.WallSeconds
	}
	identical := bytes.Equal(seqOut, parOut)
	rec.IdenticalOutput = &identical
	if !identical {
		return rec, fmt.Errorf("parallel and sequential engines produced different results — the epoch-barrier contract broke")
	}
	return rec, nil
}

// fleetRunSummary is the comparable digest of one fleet run; every field
// is deterministic, so the sequential and parallel serializations must be
// byte-equal.
type fleetRunSummary struct {
	Offered, Completed, Dropped, Abandoned int
	RoutedKeyed, RoutedBalanced, Scattered int
	MergedScalars                          float64
	P50, P99                               uint64
	PerMachineRouted                       []int
	Allocated                              []int
	Now                                    uint64
	Events                                 int
	EventHash                              uint64
}

// measureFleet builds and drives one fleet point at a worker count,
// timing construction plus the coordinator run (fleet construction is
// real work — dataset generation — and the parallel engine accelerates
// it too).
func measureFleet(e benchFleetEntry, workers int) (benchMeasurement, []byte, error) {
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	cyclesBefore := numa.SimulatedCycles()
	start := time.Now()

	bus := obs.NewBus(0)
	f, err := cluster.NewFleet(cluster.Options{
		Machines: e.Machines,
		Shards:   16,
		SF:       e.SF,
		Seed:     7,
		Mode:     workload.ModeDense,
		Bus:      bus,
		Workers:  workers,
	})
	if err != nil {
		return benchMeasurement{}, nil, err
	}
	sh := f.Sharder
	coord := &cluster.Coordinator{
		Fleet:   f,
		Process: arrivals.NewPoisson(e.Rate, 11),
		Keys: func(k int) uint64 {
			return sh.KeyForShard(int(hashmix.Mix64(uint64(k+1))%uint64(sh.Shards())), uint64(k))
		},
		MaxInFlight: 4,
		MaxArrivals: e.Arrivals,
		MaxSeconds:  600,
	}
	res := coord.Run()

	wall := time.Since(start).Seconds()
	cycles := numa.SimulatedCycles() - cyclesBefore
	runtime.ReadMemStats(&msAfter)
	m := benchMeasurement{
		WallSeconds: wall,
		SimCycles:   cycles,
		Allocs:      msAfter.Mallocs - msBefore.Mallocs,
	}
	if wall > 0 {
		m.SimCyclesPerSecond = float64(cycles) / wall
	}

	h := fnv.New64a()
	for _, ev := range bus.Events() {
		fmt.Fprintf(h, "%v\n", ev)
	}
	sum := fleetRunSummary{
		Offered: res.Offered, Completed: res.Completed,
		Dropped: res.Dropped, Abandoned: res.Abandoned,
		RoutedKeyed: res.RoutedKeyed, RoutedBalanced: res.RoutedBalanced,
		Scattered: res.Scattered, MergedScalars: res.MergedScalars,
		P50: res.Latency.P50(), P99: res.Latency.P99(),
		Allocated: f.AllocatedCores(),
		Now:       f.Now(),
		Events:    bus.Len(),
		EventHash: h.Sum64(),
	}
	for _, st := range res.PerMachine {
		sum.PerMachineRouted = append(sum.PerMachineRouted, st.Routed)
	}
	out, err := json.Marshal(sum)
	if err != nil {
		return benchMeasurement{}, nil, err
	}
	return m, out, nil
}

func printFleetRecord(rec benchFleetRecord) {
	fmt.Printf("%-14s %-5s seq  %7.3fs  %6.1f Mcyc/s  %9d allocs  | par(w=%d) %7.3fs  speedup %5.2fx\n",
		rec.Name, rec.Tier, rec.Sequential.WallSeconds, rec.Sequential.SimCyclesPerSecond/1e6,
		rec.Sequential.Allocs, rec.Workers, rec.Parallel.WallSeconds, rec.Speedup)
}

func printBenchRecord(rec benchRecord) {
	line := fmt.Sprintf("%-14s %-5s fast %7.3fs  %6.1f Mcyc/s  %9d allocs",
		rec.Name, rec.Tier, rec.Fast.WallSeconds, rec.Fast.SimCyclesPerSecond/1e6, rec.Fast.Allocs)
	if rec.Naive != nil {
		line += fmt.Sprintf("  | naive %7.3fs  speedup %5.2fx", rec.Naive.WallSeconds, rec.Speedup)
	}
	fmt.Println(line)
}

// checkBaseline fails when any entry's fast wall time regressed beyond the
// allowed factor against a previously written report. Entries are matched
// by (name, tier); missing counterparts are skipped (the baseline may be a
// full run while CI runs -quick), as are entries whose baseline wall time
// sits below the noise floor — millisecond-scale runs are dominated by
// host jitter, not by the code under test.
func checkBaseline(cur benchReport, path string, maxRegress, minWall float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	byKey := make(map[string]benchRecord, len(base.Entries))
	for _, rec := range base.Entries {
		byKey[rec.Name+"/"+rec.Tier] = rec
	}
	var failed []string
	for _, rec := range cur.Entries {
		b, ok := byKey[rec.Name+"/"+rec.Tier]
		if !ok || b.Fast.WallSeconds <= 0 {
			continue
		}
		ratio := rec.Fast.WallSeconds / b.Fast.WallSeconds
		note := ""
		if b.Fast.WallSeconds < minWall {
			note = "  (below noise floor, informational)"
		}
		fmt.Printf("baseline %-14s %-5s %7.3fs -> %7.3fs (%.2fx)%s\n",
			rec.Name, rec.Tier, b.Fast.WallSeconds, rec.Fast.WallSeconds, ratio, note)
		if ratio > maxRegress && b.Fast.WallSeconds >= minWall {
			failed = append(failed, fmt.Sprintf("%s/%s regressed %.2fx (limit %.2fx)",
				rec.Name, rec.Tier, ratio, maxRegress))
		}
	}
	fleetByKey := make(map[string]benchFleetRecord, len(base.Fleet))
	for _, rec := range base.Fleet {
		fleetByKey[rec.Name+"/"+rec.Tier] = rec
	}
	for _, rec := range cur.Fleet {
		b, ok := fleetByKey[rec.Name+"/"+rec.Tier]
		if !ok || b.Parallel.WallSeconds <= 0 {
			continue
		}
		ratio := rec.Parallel.WallSeconds / b.Parallel.WallSeconds
		note := ""
		if b.Parallel.WallSeconds < minWall {
			note = "  (below noise floor, informational)"
		}
		fmt.Printf("baseline %-14s %-5s %7.3fs -> %7.3fs (%.2fx) [parallel]%s\n",
			rec.Name, rec.Tier, b.Parallel.WallSeconds, rec.Parallel.WallSeconds, ratio, note)
		if ratio > maxRegress && b.Parallel.WallSeconds >= minWall {
			failed = append(failed, fmt.Sprintf("%s/%s parallel regressed %.2fx (limit %.2fx)",
				rec.Name, rec.Tier, ratio, maxRegress))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("wall-time regression vs %s: %v", path, failed)
	}
	return nil
}
