package main

// bench.go implements `elasticbench bench`: a fixed, pinned experiment
// suite timed under the default fast simulator paths AND under the naive
// paths of the seed implementation (walk-every-core tick loop, per-block
// memory charging, uncached dataset generation). It reports wall time,
// simulated-cycles/second and heap allocations per run, verifies the two
// paths render bit-identical results, and writes a machine-readable
// BENCH_<n>.json so later PRs have a perf trajectory to regress against.
//
//	elasticbench bench                         # full + quick tiers
//	elasticbench bench -quick                  # quick tier only (CI)
//	elasticbench bench -out BENCH_3.json
//	elasticbench bench -quick -baseline BENCH_3.json -max-regress 2
//	elasticbench bench -skip-naive             # fast paths only

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"elasticore/internal/experiments"
	"elasticore/internal/numa"
)

// benchEntry is one pinned suite point.
type benchEntry struct {
	Name string
	Tier string // "full" or "quick"
	Cfg  experiments.Config
}

// benchSuite returns the fixed suite. The configs are pinned — changing
// them invalidates baseline comparisons, so bump the BENCH file number
// when they move.
func benchSuite() []benchEntry {
	return []benchEntry{
		{"fig4", "quick", experiments.Config{SF: 0.002, Clients: 8, Users: []int{1, 4}, Seed: 1}},
		{"fig19", "quick", experiments.Config{SF: 0.002, Clients: 8, Seed: 1}},
		{"consolidation", "quick", experiments.Config{SF: 0.002, Clients: 8, Seed: 1, Tenants: 2}},
		{"fig4", "full", experiments.Config{SF: 0.005, Clients: 32, Users: []int{1, 4, 16, 64}, Seed: 1}},
		{"fig19", "full", experiments.Config{SF: 0.005, Clients: 32, Seed: 1}},
		{"consolidation", "full", experiments.Config{SF: 0.005, Clients: 32, Seed: 1, Tenants: 3}},
	}
}

// benchMeasurement is one timed run of one entry on one path.
type benchMeasurement struct {
	WallSeconds        float64 `json:"wall_seconds"`
	SimCycles          uint64  `json:"sim_cycles"`
	SimCyclesPerSecond float64 `json:"sim_cycles_per_second"`
	Allocs             uint64  `json:"allocs"`
}

// benchRecord is one suite entry's result pair.
type benchRecord struct {
	Name            string            `json:"name"`
	Tier            string            `json:"tier"`
	Config          benchConfigJSON   `json:"config"`
	Fast            benchMeasurement  `json:"fast"`
	Naive           *benchMeasurement `json:"naive,omitempty"`
	Speedup         float64           `json:"speedup,omitempty"`
	IdenticalOutput *bool             `json:"identical_output,omitempty"`
}

// benchConfigJSON pins the entry's operating point in the report.
type benchConfigJSON struct {
	SF      float64 `json:"sf"`
	Clients int     `json:"clients"`
	Users   []int   `json:"users,omitempty"`
	Seed    uint64  `json:"seed"`
	Tenants int     `json:"tenants,omitempty"`
}

// benchReport is the BENCH_<n>.json document.
type benchReport struct {
	Schema  int           `json:"schema"`
	Suite   string        `json:"suite"`
	Entries []benchRecord `json:"entries"`
	Totals  struct {
		FastWallSeconds  float64 `json:"fast_wall_seconds"`
		NaiveWallSeconds float64 `json:"naive_wall_seconds,omitempty"`
		Speedup          float64 `json:"speedup,omitempty"`
	} `json:"totals"`
}

// cmdBench parses and executes `bench`.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	quick := fs.Bool("quick", false, "run only the quick tier (CI smoke)")
	out := fs.String("out", "", "write the JSON report to this file")
	baseline := fs.String("baseline", "", "compare fast wall times against this earlier report")
	maxRegress := fs.Float64("max-regress", 2.0, "fail when fast wall time exceeds baseline by this factor")
	minWall := fs.Float64("min-wall", 0.05, "ignore baseline entries faster than this many seconds (noise floor)")
	skipNaive := fs.Bool("skip-naive", false, "skip the naive-path runs (no speedup column)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("bench takes no positional arguments")
	}

	report := benchReport{Schema: 1, Suite: "elasticore-bench"}
	for _, e := range benchSuite() {
		if *quick && e.Tier != "quick" {
			continue
		}
		rec, err := runBenchEntry(e, !*skipNaive)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", e.Name, e.Tier, err)
		}
		report.Entries = append(report.Entries, rec)
		report.Totals.FastWallSeconds += rec.Fast.WallSeconds
		if rec.Naive != nil {
			report.Totals.NaiveWallSeconds += rec.Naive.WallSeconds
		}
		printBenchRecord(rec)
	}
	if report.Totals.NaiveWallSeconds > 0 && report.Totals.FastWallSeconds > 0 {
		report.Totals.Speedup = report.Totals.NaiveWallSeconds / report.Totals.FastWallSeconds
		fmt.Printf("total: fast %.2fs, naive %.2fs, speedup %.2fx\n",
			report.Totals.FastWallSeconds, report.Totals.NaiveWallSeconds, report.Totals.Speedup)
	} else {
		fmt.Printf("total: fast %.2fs\n", report.Totals.FastWallSeconds)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
	}
	if *baseline != "" {
		if err := checkBaseline(report, *baseline, *maxRegress, *minWall); err != nil {
			return err
		}
	}
	return nil
}

// runBenchEntry times one suite entry on the fast path and, optionally,
// the naive path, verifying the rendered outputs match bit for bit.
func runBenchEntry(e benchEntry, withNaive bool) (benchRecord, error) {
	rec := benchRecord{
		Name: e.Name,
		Tier: e.Tier,
		Config: benchConfigJSON{
			SF: e.Cfg.SF, Clients: e.Cfg.Clients, Users: e.Cfg.Users,
			Seed: e.Cfg.Seed, Tenants: e.Cfg.Tenants,
		},
	}
	fast, fastOut, err := measureRun(e.Name, e.Cfg, false)
	if err != nil {
		return rec, err
	}
	rec.Fast = fast
	if !withNaive {
		return rec, nil
	}
	naive, naiveOut, err := measureRun(e.Name, e.Cfg, true)
	if err != nil {
		return rec, err
	}
	rec.Naive = &naive
	if fast.WallSeconds > 0 {
		rec.Speedup = naive.WallSeconds / fast.WallSeconds
	}
	identical := bytes.Equal(fastOut, naiveOut)
	rec.IdenticalOutput = &identical
	if !identical {
		return rec, fmt.Errorf("fast and naive paths rendered different results — equivalence broken")
	}
	return rec, nil
}

// measureRun executes one registered experiment and samples wall time,
// the simulated-cycle counter and the allocation counter around it.
func measureRun(name string, cfg experiments.Config, naive bool) (benchMeasurement, []byte, error) {
	exp, ok := experiments.Lookup(name)
	if !ok {
		return benchMeasurement{}, nil, fmt.Errorf("experiment %q not registered", name)
	}
	cfg.Naive = naive
	var msBefore, msAfter runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&msBefore)
	cyclesBefore := numa.SimulatedCycles()
	start := time.Now()
	res, err := exp.Run(context.Background(), cfg, nil)
	if err != nil {
		return benchMeasurement{}, nil, err
	}
	wall := time.Since(start).Seconds()
	cycles := numa.SimulatedCycles() - cyclesBefore
	runtime.ReadMemStats(&msAfter)

	m := benchMeasurement{
		WallSeconds: wall,
		SimCycles:   cycles,
		Allocs:      msAfter.Mallocs - msBefore.Mallocs,
	}
	if wall > 0 {
		m.SimCyclesPerSecond = float64(cycles) / wall
	}
	// Normalized rendering for the fast-vs-naive equivalence check.
	res.Meta.WallTime = 0
	res.Meta.Version = "bench"
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		return benchMeasurement{}, nil, err
	}
	return m, buf.Bytes(), nil
}

func printBenchRecord(rec benchRecord) {
	line := fmt.Sprintf("%-14s %-5s fast %7.3fs  %6.1f Mcyc/s  %9d allocs",
		rec.Name, rec.Tier, rec.Fast.WallSeconds, rec.Fast.SimCyclesPerSecond/1e6, rec.Fast.Allocs)
	if rec.Naive != nil {
		line += fmt.Sprintf("  | naive %7.3fs  speedup %5.2fx", rec.Naive.WallSeconds, rec.Speedup)
	}
	fmt.Println(line)
}

// checkBaseline fails when any entry's fast wall time regressed beyond the
// allowed factor against a previously written report. Entries are matched
// by (name, tier); missing counterparts are skipped (the baseline may be a
// full run while CI runs -quick), as are entries whose baseline wall time
// sits below the noise floor — millisecond-scale runs are dominated by
// host jitter, not by the code under test.
func checkBaseline(cur benchReport, path string, maxRegress, minWall float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	byKey := make(map[string]benchRecord, len(base.Entries))
	for _, rec := range base.Entries {
		byKey[rec.Name+"/"+rec.Tier] = rec
	}
	var failed []string
	for _, rec := range cur.Entries {
		b, ok := byKey[rec.Name+"/"+rec.Tier]
		if !ok || b.Fast.WallSeconds <= 0 {
			continue
		}
		ratio := rec.Fast.WallSeconds / b.Fast.WallSeconds
		note := ""
		if b.Fast.WallSeconds < minWall {
			note = "  (below noise floor, informational)"
		}
		fmt.Printf("baseline %-14s %-5s %7.3fs -> %7.3fs (%.2fx)%s\n",
			rec.Name, rec.Tier, b.Fast.WallSeconds, rec.Fast.WallSeconds, ratio, note)
		if ratio > maxRegress && b.Fast.WallSeconds >= minWall {
			failed = append(failed, fmt.Sprintf("%s/%s regressed %.2fx (limit %.2fx)",
				rec.Name, rec.Tier, ratio, maxRegress))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("wall-time regression vs %s: %v", path, failed)
	}
	return nil
}
