// Command elasticbench regenerates any table or figure of the paper's
// evaluation and prints the same rows/series the paper reports.
//
// Usage:
//
//	elasticbench -fig 19 -sf 0.01 -clients 64
//	elasticbench -fig 19 -engine sqlserver
//	elasticbench -fig overhead
//	elasticbench -fig consolidation -tenants 4
//	elasticbench -fig all
package main

import (
	"flag"
	"fmt"
	"os"

	"elasticore/internal/db"
	"elasticore/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 4,5,7,13,14,15,16,17,18,19,20,overhead,consolidation,all")
		sf      = flag.Float64("sf", 0.005, "TPC-H scale factor (paper: 1.0)")
		clients = flag.Int("clients", 64, "concurrent clients (paper: 256)")
		seed    = flag.Uint64("seed", 1, "data and parameter seed")
		engine  = flag.String("engine", "monetdb", "engine flavour: monetdb | sqlserver")
		tenants = flag.Int("tenants", 3, "tenant count for the consolidation experiment (2..4)")
	)
	flag.Parse()

	cfg := experiments.Config{SF: *sf, Clients: *clients, Seed: *seed, Tenants: *tenants}
	if *engine == "sqlserver" {
		cfg.Placement = db.PlacementNUMAAware
	} else if *engine != "monetdb" {
		fmt.Fprintf(os.Stderr, "elasticbench: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	if err := run(*fig, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "elasticbench: %v\n", err)
		os.Exit(1)
	}
}

func run(fig string, cfg experiments.Config) error {
	type artifact struct {
		name string
		exec func() (fmt.Stringer, error)
	}
	artifacts := []artifact{
		{"4", func() (fmt.Stringer, error) { return experiments.RunFig4(cfg) }},
		{"5", func() (fmt.Stringer, error) { return experiments.RunFig5(cfg) }},
		{"7", func() (fmt.Stringer, error) { return experiments.RunFig7(cfg) }},
		{"13", func() (fmt.Stringer, error) { return experiments.RunFig13(cfg) }},
		{"14", func() (fmt.Stringer, error) { return experiments.RunFig14(cfg) }},
		{"15", func() (fmt.Stringer, error) { return experiments.RunFig15(cfg) }},
		{"16", func() (fmt.Stringer, error) { return experiments.RunFig16(cfg) }},
		{"17", func() (fmt.Stringer, error) { return experiments.RunFig17(cfg) }},
		{"18", func() (fmt.Stringer, error) { return experiments.RunFig18(cfg) }},
		{"19", func() (fmt.Stringer, error) { return experiments.RunFig19(cfg) }},
		{"20", func() (fmt.Stringer, error) { return experiments.RunFig20(cfg) }},
		{"overhead", func() (fmt.Stringer, error) { return experiments.MeasureOverhead(cfg, 1000) }},
		{"consolidation", func() (fmt.Stringer, error) { return experiments.RunConsolidation(cfg) }},
	}
	ran := false
	for _, a := range artifacts {
		if fig != "all" && fig != a.name {
			continue
		}
		ran = true
		res, err := a.exec()
		if err != nil {
			return fmt.Errorf("figure %s: %w", a.name, err)
		}
		fmt.Println(res)
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
