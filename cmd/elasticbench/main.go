// Command elasticbench runs registered experiments: every table and figure
// of the paper's evaluation plus the consolidation scenario, through the
// experiments platform (registry, structured results, parallel runner).
//
// Usage:
//
//	elasticbench list
//	elasticbench run fig4 fig19 consolidation -format json -out results/ -parallel 4
//	elasticbench run all -sf 0.01 -clients 128
//	elasticbench run fig19 -engine sqlserver -v
//
// The flag form `elasticbench -fig 19` is kept as a deprecated alias for
// `elasticbench run fig19`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"elasticore/internal/db"
	"elasticore/internal/experiments"
	"elasticore/internal/obs"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "list":
		err = cmdList(args[1:])
	case len(args) > 0 && args[0] == "run":
		err = cmdRun(args[1:])
	case len(args) > 0 && args[0] == "bench":
		err = cmdBench(args[1:])
	case len(args) > 0 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help"):
		usage(os.Stdout)
	default:
		err = cmdLegacy(args)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "elasticbench: %v\n", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprint(w, `elasticbench runs registered experiments.

Commands:
  list [-tag S]            list experiments with descriptions and tags
  run <name>... [flags]    run experiments ("all" expands the registry)
  bench [flags]            time the fixed perf suite (fast vs naive paths)

Tags group experiments for selection (list -tag S, experiments.WithTag):
  microbench   single-query / single-operator measurements (figs 4-5, 13-16)
  elastic      the mechanism is in the loop (most figures, consolidation)
  scheduling   OS scheduler behaviour under concurrency
  trace        lifespan / migration / tomograph artifacts
  strategy     CPU-load vs HT/IMC state-transition strategies
  memory       per-socket cache and memory-controller metrics
  workload     full 22-query stable / mixed phase protocols
  energy       the paper's CPU + interconnect energy model
  tenancy      multi-tenant consolidation under the core arbiter
  openloop     open-loop arrival-driven traffic (latency-load, burst-response)
  traffic      arrival processes and admission queues
  topology     machine-shape sweeps over the topology zoo
  numa         NUMA-friendliness and hop-distance placement
  petrinet     the PrT net itself (state transitions)
  cluster      sharded fleets behind the scatter/route coordinator
  faults       failure injection: crashes, slow cores, lossy links

Bench flags:
  -quick           run only the quick tier (CI smoke)
  -out FILE        write the JSON report (the BENCH_<n>.json trajectory)
  -baseline FILE   fail if fast wall time regresses vs an earlier report
  -max-regress F   regression factor allowed against -baseline (default 2)
  -skip-naive      skip the naive-path comparison runs

Run flags:
  -sf F        TPC-H scale factor (default 0.005; paper: 1.0)
  -clients N   concurrent clients / open-loop server sessions (default 64)
  -seed N      data and parameter seed (default 1)
  -engine S    engine flavour: monetdb | sqlserver
  -tenants N   tenant count for consolidation (2..4, default 3)
  -loads S     comma-separated offered-load sweep for latency-load, as
               fractions of saturation (default 0.25,0.5,0.75,1,1.5,2)
  -arrival S   latency-load arrival process: poisson | mmpp | diurnal
  -open-arrivals N  arrivals offered per open-loop point (default 120)
  -machines N  fleet size for the cluster experiments (default 4;
               scale-out sweeps 1..N in powers of two)
  -shards N    fleet partition count (default 2x machines; must be
               >= machines so every machine owns data)
  -topology S  machine shape for rig experiments: a zoo name (opteron,
               2socket, 4ring, 8twisted, epyc) or a spec like "2x8" or
               "4x4 @ 1 2 1 1 2 1" (nodes x cores @ upper-triangle hop
               counts); default: the SF-scaled Opteron testbed
  -replicas N  shard copies kept by the cluster experiments (0 picks
               each experiment's default; must be <= machines)
  -workers N   goroutines a fleet spreads machine ticks over (default
               GOMAXPROCS; 1 forces the sequential engine; results are
               bit-identical at every value)
  -faults S    deterministic failure plan injected into the cluster
               experiments, e.g. "crash m1 @0.02s for 0.06s; slow m0
               c* x4 @0s; link m2 +0.5ms drop 0.3 @1s for 2s" (or the
               equivalent JSON); empty disables fault injection
  -trace FILE  record the run's telemetry bus and write it as Chrome/
               Perfetto trace-event JSON (open at ui.perfetto.dev); the
               batch must name exactly one experiment
  -format S    output format: text | json | csv (default text)
  -out DIR     write one <name>.<format> file per experiment into DIR
  -parallel N  worker pool size (default 1)
  -v           stream phase/progress events to stderr

Exit status: non-zero when any experiment in the batch fails (or a
flag, name or output error occurs); 0 only when every experiment ran
and rendered successfully.
`)
}

// cmdList prints the registry: name, tags, summary.
func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	tag := fs.String("tag", "", "only experiments carrying this tag")
	if err := fs.Parse(args); err != nil {
		return err
	}
	exps := experiments.All()
	if *tag != "" {
		exps = experiments.WithTag(*tag)
	}
	for _, e := range exps {
		d := e.Describe()
		fmt.Printf("%-14s [%s]\n    %s\n    %s\n",
			e.Name(), strings.Join(d.Tags, ", "), d.Title, d.Summary)
	}
	if len(exps) == 0 && *tag != "" {
		return fmt.Errorf("no experiments tagged %q (tags: %s)",
			*tag, strings.Join(experiments.Tags(), ", "))
	}
	return nil
}

// runFlags are the options shared by `run` and the deprecated flag form.
type runFlags struct {
	cfg      experiments.Config
	format   string
	out      string
	parallel int
	verbose  bool
	loads    string
	ratios   string
	trace    string
}

func bindRunFlags(fs *flag.FlagSet) (*runFlags, *string) {
	rf := &runFlags{}
	fs.Float64Var(&rf.cfg.SF, "sf", 0.005, "TPC-H scale factor (paper: 1.0)")
	fs.IntVar(&rf.cfg.Clients, "clients", 64, "concurrent clients / open-loop server sessions (paper: 256)")
	fs.Uint64Var(&rf.cfg.Seed, "seed", 1, "data and parameter seed")
	fs.IntVar(&rf.cfg.Tenants, "tenants", 3, "tenant count for the consolidation experiment (2..4)")
	fs.StringVar(&rf.loads, "loads", "", "comma-separated offered-load fractions for latency-load (default 0.25,0.5,0.75,1,1.5,2)")
	fs.StringVar(&rf.ratios, "lookup-ratios", "", "comma-separated point-lookup fractions for htap-mix (default 0,0.25,0.5,0.75,1)")
	fs.StringVar(&rf.cfg.Arrival, "arrival", "", "latency-load arrival process: poisson | mmpp | diurnal")
	fs.IntVar(&rf.cfg.OpenArrivals, "open-arrivals", 0, "arrivals offered per open-loop point (default 120)")
	fs.IntVar(&rf.cfg.Machines, "machines", 0, "fleet size for the cluster experiments (default 4)")
	fs.IntVar(&rf.cfg.Shards, "shards", 0, "fleet partition count (default 2x machines; must be >= machines)")
	fs.StringVar(&rf.cfg.Topology, "topology", "", "machine shape: zoo name or \"nodes x cores [@ hops...]\" spec")
	fs.IntVar(&rf.cfg.Replicas, "replicas", 0, "shard copies kept by the cluster experiments (0: experiment default; must be <= machines)")
	fs.IntVar(&rf.cfg.Workers, "workers", 0, "goroutines per fleet for machine ticks (0: GOMAXPROCS, 1: sequential; results bit-identical)")
	fs.StringVar(&rf.cfg.Faults, "faults", "", "deterministic failure plan injected into cluster experiments (internal/faults grammar or JSON)")
	engine := fs.String("engine", "monetdb", "engine flavour: monetdb | sqlserver")
	fs.StringVar(&rf.trace, "trace", "", "write a Chrome/Perfetto trace-event JSON file (single experiment only)")
	fs.StringVar(&rf.format, "format", "text", "output format: text | json | csv")
	fs.StringVar(&rf.out, "out", "", "directory for one <name>.<format> file per experiment")
	fs.IntVar(&rf.parallel, "parallel", 1, "worker pool size")
	fs.BoolVar(&rf.verbose, "v", false, "stream phase/progress events to stderr")
	return rf, engine
}

func (rf *runFlags) applyEngine(engine string) error {
	switch engine {
	case "monetdb":
	case "sqlserver":
		rf.cfg.Placement = db.PlacementNUMAAware
	default:
		return fmt.Errorf("unknown engine %q (want monetdb or sqlserver)", engine)
	}
	if rf.loads != "" {
		for _, field := range strings.Split(rf.loads, ",") {
			l, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return fmt.Errorf("bad -loads entry %q: %v", field, err)
			}
			rf.cfg.Loads = append(rf.cfg.Loads, l)
		}
	}
	if rf.ratios != "" {
		for _, field := range strings.Split(rf.ratios, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return fmt.Errorf("bad -lookup-ratios entry %q: %v", field, err)
			}
			rf.cfg.LookupRatios = append(rf.cfg.LookupRatios, r)
		}
	}
	return nil
}

// cmdRun parses `run <name>... [flags]` and executes the batch. Names and
// flags may interleave (`run fig4 -sf 0.01 fig19 -format json`).
func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	rf, engine := bindRunFlags(fs)
	var names []string
	for len(args) > 0 {
		if args[0] == "--" {
			// Explicit terminator: everything after is a name.
			names = append(names, args[1:]...)
			break
		}
		// A bare "-" is a non-flag to flag.Parse too; consuming it here
		// keeps the loop advancing.
		if args[0] == "-" || !strings.HasPrefix(args[0], "-") {
			names = append(names, args[0])
			args = args[1:]
			continue
		}
		// flag.Parse consumes flags up to the next non-flag token; keep
		// alternating so no trailing name is silently dropped.
		if err := fs.Parse(args); err != nil {
			return err
		}
		rest := fs.Args()
		if len(rest) == len(args) {
			// Defensive: no progress means the token parses as neither
			// flag nor name — treat it as a name so Resolve reports it.
			names = append(names, rest[0])
			rest = rest[1:]
		}
		args = rest
	}
	if err := rf.applyEngine(*engine); err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("run needs experiment names (try `elasticbench list` or `run all`)")
	}
	return execute(names, rf)
}

// cmdLegacy keeps the original flag interface alive: -fig N selects one
// figure (or "all") and prints text to stdout.
func cmdLegacy(args []string) error {
	fs := flag.NewFlagSet("elasticbench", flag.ExitOnError)
	fs.Usage = func() {
		usage(os.Stderr)
		fmt.Fprintln(os.Stderr, "\nDeprecated flag form:")
		fs.PrintDefaults()
	}
	fig := fs.String("fig", "all", "deprecated alias: figure to run (4..20, overhead, consolidation, all)")
	rf, engine := bindRunFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unknown command %q (try `elasticbench list` or `elasticbench run <name>`)", fs.Arg(0))
	}
	if err := rf.applyEngine(*engine); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "elasticbench: -fig is deprecated; use `elasticbench run %s`\n", legacyName(*fig))
	return execute([]string{legacyName(*fig)}, rf)
}

// legacyName maps the old -fig values ("4", "19", "overhead") onto
// registry names.
func legacyName(fig string) string {
	switch fig {
	case "all", "overhead", "consolidation":
		return fig
	}
	if !strings.HasPrefix(fig, "fig") && fig != "" && fig[0] >= '0' && fig[0] <= '9' {
		return "fig" + fig
	}
	return fig
}

// execute resolves names (failing fast on typos), runs the batch and
// renders every result.
func execute(names []string, rf *runFlags) error {
	exps, err := experiments.Resolve(names...)
	if err != nil {
		return err
	}
	if rf.format != "text" && rf.format != "json" && rf.format != "csv" {
		return fmt.Errorf("unknown format %q (want text, json or csv)", rf.format)
	}
	var bus *obs.Bus
	if rf.trace != "" {
		if len(exps) != 1 {
			return fmt.Errorf("-trace records one experiment's telemetry, got %d (run them separately)", len(exps))
		}
		bus = obs.NewBus(0)
		rf.cfg.Bus = bus
	}
	if rf.out != "" {
		if err := os.MkdirAll(rf.out, 0o755); err != nil {
			return err
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := &experiments.Runner{Parallel: rf.parallel, Config: rf.cfg}
	if rf.verbose {
		runner.Observe = func(name string) experiments.Observer {
			return &experiments.WriterObserver{W: os.Stderr, Prefix: name}
		}
	}
	reports := runner.Run(ctx, exps...)

	failed := 0
	for _, rep := range reports {
		if rep.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "elasticbench: %s: %v\n", rep.Name, rep.Err)
			continue
		}
		if err := emit(rep, rf); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "elasticbench: %s done in %s\n", rep.Name, rep.Elapsed.Round(1e6))
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d experiments failed", failed, len(reports))
	}
	if bus != nil {
		if err := obs.WriteTraceFile(rf.trace, bus.Events()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "elasticbench: wrote %d trace events to %s (%d published, %d beyond the ring)\n",
			bus.Len(), rf.trace, bus.Total(), bus.Dropped())
	}
	return nil
}

// emit renders one report to stdout or into the -out directory.
func emit(rep experiments.Report, rf *runFlags) error {
	if rf.out == "" {
		return rep.Result.Render(os.Stdout, rf.format)
	}
	ext := rf.format
	if ext == "text" {
		ext = "txt"
	}
	path := filepath.Join(rf.out, rep.Name+"."+ext)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Result.Render(f, rf.format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
