// Command elastictop runs a mixed TPC-H workload under the elastic
// mechanism and prints its state-transition timeline — a textual view of
// the paper's Figure 7: fired transition path, load reading, allocated
// core count and the cpuset per control period.
//
// Usage:
//
//	elastictop -sf 0.005 -clients 32 -mode adaptive -queries 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"elasticore/internal/db"
	"elasticore/internal/petrinet"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.005, "scale factor")
		clients = flag.Int("clients", 32, "concurrent clients")
		queries = flag.Int("queries", 2, "queries per client")
		mode    = flag.String("mode", "adaptive", "allocation mode: dense | sparse | adaptive")
	)
	flag.Parse()

	var m workload.Mode
	switch *mode {
	case "dense":
		m = workload.ModeDense
	case "sparse":
		m = workload.ModeSparse
	case "adaptive":
		m = workload.ModeAdaptive
	default:
		fmt.Fprintf(os.Stderr, "elastictop: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	rig, err := workload.NewRig(workload.Options{SF: *sf, Mode: m})
	if err != nil {
		fmt.Fprintf(os.Stderr, "elastictop: %v\n", err)
		os.Exit(1)
	}
	d := &workload.Driver{Rig: rig, QueriesPerClient: *queries}
	res := d.Run(*clients, func(c, k int) *db.Plan {
		x := uint64(c)*2654435761 + uint64(k) + 1
		return tpch.Build(int(x%tpch.QueryCount)+1, x)
	})

	topo := rig.Machine.Topology()
	fmt.Printf("mode=%s clients=%d completed=%d throughput=%.1f q/s elapsed=%.3fs\n\n",
		m, *clients, res.Completed, res.Throughput, res.ElapsedSeconds)
	fmt.Printf("%-10s %-18s %5s %6s  %s\n", "t(s)", "transition", "u", "cores", "action")
	for _, e := range rig.Mech.Events() {
		action := ""
		switch e.Action {
		case petrinet.DecisionAllocate:
			action = fmt.Sprintf("+core %d", e.Core)
		case petrinet.DecisionRelease:
			action = fmt.Sprintf("-core %d", e.Core)
		}
		fmt.Printf("%-10.4f %-18s %5d %6d  %s\n",
			topo.CyclesToSeconds(e.Now), e.Label, e.U, e.NAlloc, action)
	}
	fmt.Printf("\nfinal cpuset: %s\n", rig.CGroup.CPUs())
	fmt.Printf("stolen=%d migrations=%d cross-node=%d\n",
		res.Sched.StolenTasks, res.Sched.Migrations, res.Sched.CrossNodeMigrations)
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("net incidence matrix (A^T = Post - Pre):")
	fmt.Println(rig.Mech.Net().Net().Incidence())
}
