// Command elastictop runs a mixed TPC-H workload under the elastic
// mechanism and prints its state-transition timeline — a textual view of
// the paper's Figure 7: fired transition path, load reading, allocated
// core count and the cpuset per control period.
//
// The view is rendered entirely from the rig's telemetry bus
// (internal/obs): the mechanism publishes a KindTransition event per
// control period and the scheduler its migrations, so elastictop is just
// one more subscriber — it shares the stream with any trace consumer and
// can dump the whole run as a Perfetto trace alongside.
//
// Usage:
//
//	elastictop -sf 0.005 -clients 32 -mode adaptive -queries 3
//	elastictop -trace run.json   # also write Chrome/Perfetto JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"elasticore/internal/db"
	"elasticore/internal/numa"
	"elasticore/internal/obs"
	"elasticore/internal/sched"
	"elasticore/internal/tpch"
	"elasticore/internal/workload"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.005, "scale factor")
		clients = flag.Int("clients", 32, "concurrent clients")
		queries = flag.Int("queries", 2, "queries per client")
		mode    = flag.String("mode", "adaptive", "allocation mode: dense | sparse | adaptive")
		trace   = flag.String("trace", "", "write the run's telemetry as Chrome/Perfetto trace-event JSON")
	)
	flag.Parse()

	var m workload.Mode
	switch *mode {
	case "dense":
		m = workload.ModeDense
	case "sparse":
		m = workload.ModeSparse
	case "adaptive":
		m = workload.ModeAdaptive
	default:
		fmt.Fprintf(os.Stderr, "elastictop: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	bus := obs.NewBus(0)
	rig, err := workload.NewRig(workload.Options{SF: *sf, Mode: m, Bus: bus})
	if err != nil {
		fmt.Fprintf(os.Stderr, "elastictop: %v\n", err)
		os.Exit(1)
	}
	probe := rig.EnableProbe(0)
	d := &workload.Driver{Rig: rig, QueriesPerClient: *queries}
	res := d.Run(*clients, func(c, k int) *db.Plan {
		x := uint64(c)*2654435761 + uint64(k) + 1
		return tpch.Build(int(x%tpch.QueryCount)+1, x)
	})

	topo := rig.Machine.Topology()
	fmt.Printf("mode=%s clients=%d completed=%d throughput=%.1f q/s elapsed=%.3fs\n\n",
		m, *clients, res.Completed, res.Throughput, res.ElapsedSeconds)
	fmt.Printf("%-10s %-18s %5s %6s  %-10s %s\n", "t(s)", "transition", "u", "cores", "action", "cpuset")
	for _, e := range bus.EventsOfKind(obs.KindTransition) {
		action := ""
		switch {
		case e.Core < 0:
			// No core moved this period.
		case countBits(e.Set) > prevCount(e):
			action = fmt.Sprintf("+core %d", e.Core)
		default:
			action = fmt.Sprintf("-core %d", e.Core)
		}
		fmt.Printf("%-10.4f %-18s %5d %6d  %-10s %s\n",
			topo.CyclesToSeconds(e.Now), e.Label, e.V1, e.V2, action, sched.CPUSet(e.Set))
	}

	fmt.Printf("\nfinal cpuset: %s\n", rig.CGroup.CPUs())
	fmt.Printf("stolen=%d migrations=%d cross-node=%d\n",
		res.Sched.StolenTasks, res.Sched.Migrations, res.Sched.CrossNodeMigrations)
	fmt.Printf("bus: %d events published (%d retained: %d slices, %d migrations, %d tasks)\n",
		bus.Total(), bus.Len(),
		len(bus.EventsOfKind(obs.KindRunSlice)),
		len(bus.EventsOfKind(obs.KindMigration)),
		len(bus.EventsOfKind(obs.KindTaskDone)))
	if samples := probe.Samples(); len(samples) > 0 {
		last := samples[len(samples)-1]
		fmt.Printf("probe: %d samples, last window: %d cores, %.2f MB HT, %.2f MB IMC, %.3f J\n",
			len(samples), last.Allocated,
			float64(last.HTBytes)/1e6, float64(last.IMCBytes)/1e6, last.EnergyJoules)
	}
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("net incidence matrix (A^T = Post - Pre):")
	fmt.Println(rig.Mech.Net().Net().Incidence())

	if *trace != "" {
		if err := obs.WriteTraceFile(*trace, bus.Events()); err != nil {
			fmt.Fprintf(os.Stderr, "elastictop: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events to %s\n", bus.Len(), *trace)
	}
}

// countBits sizes a cpuset mask.
func countBits(set uint64) int { return sched.CPUSet(set).Count() }

// prevCount infers the pre-step allocation from a transition event: V2 is
// the post-step size; when Core >= 0 a core moved, so the set changed by
// exactly one — it grew if the moved core is a member now.
func prevCount(e obs.Event) int {
	if e.Core < 0 {
		return int(e.V2)
	}
	if sched.CPUSet(e.Set).Contains(numa.CoreID(e.Core)) {
		return int(e.V2) - 1
	}
	return int(e.V2) + 1
}
