// Command tpchgen generates the TPC-H-shaped dataset into the simulated
// store and prints table summaries plus optional sample rows.
//
// Usage:
//
//	tpchgen -sf 0.01
//	tpchgen -sf 0.01 -table lineitem -rows 5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"elasticore/internal/db"
	"elasticore/internal/numa"
	"elasticore/internal/tpch"
)

func main() {
	var (
		sf    = flag.Float64("sf", 0.01, "scale factor")
		seed  = flag.Uint64("seed", 1, "generator seed")
		table = flag.String("table", "", "print sample rows of this table")
		rows  = flag.Int("rows", 5, "sample rows to print")
	)
	flag.Parse()

	store := db.NewStore(numa.NewMachine(numa.Opteron8387()))
	ds, err := tpch.Load(store, tpch.Config{SF: *sf, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpchgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("TPC-H SF %g (seed %d)\n", *sf, *seed)
	fmt.Printf("  lineitem %9d rows\n", ds.Sizes.Lineitem)
	fmt.Printf("  orders   %9d rows\n", ds.Sizes.Orders)
	fmt.Printf("  customer %9d rows\n", ds.Sizes.Customer)
	fmt.Printf("  part     %9d rows\n", ds.Sizes.Part)
	fmt.Printf("  partsupp %9d rows\n", ds.Sizes.PartSupp)
	fmt.Printf("  supplier %9d rows\n", ds.Sizes.Supplier)
	fmt.Printf("  nation   %9d rows\n", ds.Sizes.Nation)
	fmt.Printf("  region   %9d rows\n", ds.Sizes.Region)

	if *table == "" {
		return
	}
	if !store.HasTable(*table) {
		fmt.Fprintf(os.Stderr, "tpchgen: unknown table %q\n", *table)
		os.Exit(2)
	}
	t := store.Table(*table)
	cols := t.Columns()
	sort.Strings(cols)
	fmt.Printf("\n%s (%d rows)\n", *table, t.Rows)
	for _, c := range cols {
		fmt.Printf("%s", pad(c, 18))
	}
	fmt.Println()
	n := *rows
	if n > t.Rows {
		n = t.Rows
	}
	for i := 0; i < n; i++ {
		for _, c := range cols {
			col := t.Col(c)
			if col.Kind == db.KindI64 {
				fmt.Printf("%s", pad(fmt.Sprint(col.I[i]), 18))
			} else {
				fmt.Printf("%s", pad(fmt.Sprintf("%.2f", col.F[i]), 18))
			}
		}
		fmt.Println()
	}
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}
