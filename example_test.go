package elasticore_test

// example_test.go gives every root re-export a runnable, output-checked
// godoc example — the quickstart programs under examples/ show complete
// applications, but godoc readers see these. All examples run on the
// deterministic simulator, so the expected outputs are exact.

import (
	"context"
	"fmt"
	"log"

	"elasticore"
)

// ExampleRegistry looks up a registered experiment and filters the
// catalogue by tag — the surface elasticbench's list/run commands sit on.
func ExampleRegistry() {
	e, ok := elasticore.LookupExperiment("topology-sweep")
	if !ok {
		log.Fatal("not registered")
	}
	fmt.Println(e.Name(), e.Describe().Tags)
	for _, exp := range elasticore.ExperimentsWithTag("tenancy") {
		fmt.Println("tenancy:", exp.Name())
	}
	// Output:
	// topology-sweep [topology numa elastic]
	// tenancy: consolidation
	// tenancy: htap-mix
}

// ExampleRunner executes a custom experiment through the worker-pool
// runner. Any function returning a structured Result plugs into the same
// machinery as the paper's figures.
func ExampleRunner() {
	exp := elasticore.NewExperiment("answer",
		elasticore.ExperimentDescription{
			Title:   "The answer",
			Summary: "returns a single metric",
			Tags:    []string{"demo"},
		},
		func(ctx context.Context, c elasticore.ExperimentConfig, obs elasticore.Observer) (*elasticore.Result, error) {
			res := &elasticore.Result{}
			res.AddMetric("answer", 42, "")
			return res, nil
		})

	runner := &elasticore.Runner{Parallel: 2}
	reports := runner.Run(context.Background(), exp)
	v, _ := reports[0].Result.Metric("answer")
	fmt.Println(reports[0].Name, v, reports[0].Err)
	// Output: answer 42 <nil>
}

// ExampleHistogram records latencies into the log-bucketed histogram and
// reads percentiles back with bounded relative error.
func ExampleHistogram() {
	var h elasticore.Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	fmt.Println("count:", h.Count())
	fmt.Println("min..max:", h.Min(), "..", h.Max())
	fmt.Println("p50 within 1/16:", h.P50() >= 500-500/16 && h.P50() <= 500+500/16)

	// Histograms merge bucket-wise (e.g. across tenants).
	var other elasticore.Histogram
	other.Record(5000)
	h.Merge(&other)
	fmt.Println("merged:", h.Count(), h.Max())
	// Output:
	// count: 1000
	// min..max: 1 .. 1000
	// p50 within 1/16: true
	// merged: 1001 5000
}

// ExampleOpenDriver replays a seeded Poisson arrival stream against a
// rig: open-loop traffic with an admission queue, where backlog and tail
// latency are observable.
func ExampleOpenDriver() {
	rig, err := elasticore.NewRig(elasticore.RigOptions{
		SF:   0.002,
		Mode: elasticore.ModeAdaptive,
	})
	if err != nil {
		log.Fatal(err)
	}
	d := &elasticore.OpenDriver{
		Rig:         rig,
		Process:     elasticore.PoissonArrivals(400, 7), // 400 q/s, seed 7
		MaxInFlight: 8,
		MaxArrivals: 40,
	}
	res := d.Run(func(k int) *elasticore.Plan {
		return elasticore.BuildQuery(6, uint64(k+1))
	})
	fmt.Println("offered:", res.Offered, "dropped:", res.Dropped)
	fmt.Println("all completed:", res.Completed == res.Offered)
	fmt.Println("p99 >= p50:", res.Latency.P99() >= res.Latency.P50())
	// Output:
	// offered: 40 dropped: 0
	// all completed: true
	// p99 >= p50: true
}

// ExampleArbiter consolidates two tenant databases onto one machine:
// each keeps its own elastic mechanism, and the arbiter transfers cores
// between their cgroups under SLA weights without over-committing.
func ExampleArbiter() {
	rig, err := elasticore.NewMultiRig(elasticore.MultiRigOptions{
		Tenants: []elasticore.TenantSpec{
			{Name: "gold", SF: 0.002, Mode: elasticore.ModeDense,
				SLA: elasticore.SLA{Weight: 4, MinCores: 2}},
			{Name: "bronze", SF: 0.002, Mode: elasticore.ModeSparse,
				SLA: elasticore.SLA{Weight: 1}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	loads := []elasticore.TenantLoad{
		{Clients: 8, QueriesPerClient: 4, Plan: func(c, k int) *elasticore.Plan {
			return elasticore.BuildQuery(6, uint64(c*10+k+1))
		}},
		{Clients: 8, QueriesPerClient: 4, Plan: func(c, k int) *elasticore.Plan {
			return elasticore.BuildQuery(6, uint64(c*10+k+1))
		}},
	}
	res, err := rig.Run(loads, 0, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	gold, bronze := rig.Tenants[0], rig.Tenants[1]
	fmt.Println("no over-commit:", res.PeakTotalCores <= res.MachineCores)
	fmt.Println("disjoint cpusets:", gold.Allocated().Intersect(bronze.Allocated()) == 0)
	fmt.Println("gold keeps its floor:", gold.Allocated().Count() >= 2)
	// Output:
	// no over-commit: true
	// disjoint cpusets: true
	// gold keeps its floor: true
}

// ExampleSharder partitions hashed shards into contiguous per-machine
// ranges: the same key always routes to the same shard, and every shard
// has exactly one owner.
func ExampleSharder() {
	sh, err := elasticore.NewSharder(8, 4) // 8 shards on 4 machines
	if err != nil {
		log.Fatal(err)
	}
	for m := 0; m < 4; m++ {
		lo, hi := sh.ShardsOf(m)
		fmt.Printf("machine %d owns shards [%d,%d)\n", m, lo, hi)
	}
	key := sh.KeyForShard(5, 0) // synthesize a key hashing to shard 5
	fmt.Println("key routes to shard", sh.Shard(key), "on machine", sh.MachineFor(key))
	// Output:
	// machine 0 owns shards [0,2)
	// machine 1 owns shards [2,4)
	// machine 2 owns shards [4,6)
	// machine 3 owns shards [6,8)
	// key routes to shard 5 on machine 2
}

// ExampleCoordinator runs open-loop traffic against a two-machine fleet:
// keyed queries go to their shard's owner, every third request fans out
// to all machines and merges by scalar addition.
func ExampleCoordinator() {
	fleet, err := elasticore.NewFleet(elasticore.FleetOptions{
		Machines: 2,
		Shards:   4,
		SF:       0.002,
		Seed:     7,
		Mode:     elasticore.ModeDense,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := &elasticore.Coordinator{
		Fleet:   fleet,
		Process: elasticore.PoissonArrivals(400, 7),
		Keys: func(k int) uint64 { // route request k by its shard
			return fleet.Sharder.KeyForShard(k%fleet.Sharder.Shards(), uint64(k))
		},
		ScatterEvery: 3,
		MaxArrivals:  12,
	}
	res := c.Run()
	fmt.Println("offered:", res.Offered, "scattered:", res.Scattered)
	fmt.Println("all completed:", res.Completed == res.Offered)
	fmt.Println("merged revenue positive:", res.MergedScalars > 0)
	// Output:
	// offered: 12 scattered: 4
	// all completed: true
	// merged revenue positive: true
}

// ExampleClusterArbiter attaches the cluster control tier to a fleet
// under a core budget below physical capacity: the per-machine
// mechanisms evaluate their desires, the arbiter apportions and moves
// cores across machines, charging a migration latency per moved core.
func ExampleClusterArbiter() {
	fleet, err := elasticore.NewFleet(elasticore.FleetOptions{
		Machines: 2,
		SF:       0.002,
		Seed:     7,
		Mode:     elasticore.ModeAdaptive,
	})
	if err != nil {
		log.Fatal(err)
	}
	ca, err := elasticore.NewClusterArbiter(elasticore.ClusterArbiterConfig{
		Fleet:  fleet,
		Budget: 12, // two 16-core machines share 12 cores
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		fleet.Tick()
	}
	held := 0
	for _, n := range fleet.AllocatedCores() {
		held += n
	}
	fmt.Println("within budget:", held+ca.InTransit() <= ca.Budget())
	fmt.Println("charged = moved x latency:",
		ca.ChargedCycles == uint64(ca.MovedCores)*ca.MigrateLatency())
	// Output:
	// within budget: true
	// charged = moved x latency: true
}

// ExamplePlacement grows an allocation core by core on the 8-socket
// twisted-ladder machine: the node-fill policy packs one socket, then
// opens a one-hop neighbour — never a distant node.
func ExamplePlacement() {
	topo := elasticore.EightSocketTwisted()
	alloc := elasticore.NewPlacedAllocator(topo, elasticore.NodeFillPlacement())

	set := elasticore.CPUSet(0)
	for i := 0; i < 6; i++ {
		core, ok := alloc.Next(set)
		if !ok {
			break
		}
		set = set.Add(core)
	}
	fmt.Println("cpuset:", set)
	for _, n := range set.NodesTouched(topo) {
		fmt.Printf("node %d: %d hops from node 0\n", n, topo.Hops(0, n))
	}
	// Output:
	// cpuset: 0-5
	// node 0: 0 hops from node 0
	// node 1: 1 hops from node 0
}
